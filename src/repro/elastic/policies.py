"""Autoscaler policies: when to grow and when to shrink the worker fleet.

Each policy is a pure decision function over an :class:`ElasticContext`
snapshot — it owns no simulation state beyond its own configuration, so the
same policy object produces the same actions for the same context (the
determinism the golden traces rely on).  Three families cover the paper's
non-dedicated-cluster reality:

* :class:`UtilizationThresholdPolicy` — progress-driven: scale out while the
  estimated time-to-finish exceeds a horizon (and the cluster is not busy),
  scale the newest workers back in when the remaining work no longer
  justifies the fleet.
* :class:`StragglerPressurePolicy` — scale *in* a persistent straggler
  instead of dragging it (optionally requesting a healthy replacement),
  the elastic alternative to KILL_RESTART.
* :class:`ScheduledCapacityPolicy` — a deterministic capacity plan (peak/
  off-peak steps), the "the scheduler frees capacity at 2am" pattern.

The *server* tier has its own policy registry (:data:`SERVER_POLICIES`),
because a straggling parameter server throttles every worker at once and the
right levers differ:

* :class:`ServerQueueDepthPolicy` — backlog-driven: grow the serving tier
  while the mean push-queue depth per server exceeds a threshold (and the
  cluster can actually deliver a pod), shrink it when the queues run dry.
* :class:`ContendedServerPolicy` — retire-and-replace: detect a persistently
  contended server (the one fault class where the paper shows only
  KILL_RESTART helps) and retire it, requesting a healthy replacement only
  when the pending-time forecast says it would arrive in time to matter.
* :class:`ServingSLOPolicy` — SLO-driven: under training + serving
  colocation, grow the tier while the serving workload breaches its shed
  or p99 latency budget, shrink it once the window is clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.actions import Action, ScaleIn, ScaleInServers, ScaleOut, ScaleOutServers
from ..core.detection import detect_stragglers

__all__ = [
    "ElasticContext",
    "AutoscalerPolicy",
    "UtilizationThresholdPolicy",
    "StragglerPressurePolicy",
    "ScheduledCapacityPolicy",
    "ServerQueueDepthPolicy",
    "ContendedServerPolicy",
    "ServingSLOPolicy",
    "POLICIES",
    "SERVER_POLICIES",
    "make_policy",
    "make_server_policy",
]


@dataclass
class ElasticContext:
    """Everything a policy may consult for one scaling decision.

    ``active_workers`` is ordered by join time (original workers first,
    elastically added ones after), which is what makes "retire the newest"
    deterministic.  ``pending_workers`` counts requested-but-not-yet-placed
    pods, so a policy does not re-request capacity that is already in the
    scheduling queue.
    """

    now: float
    active_workers: List[str]
    pending_workers: int
    min_workers: int
    max_workers: Optional[int]
    cluster_busy: bool
    pending_time_s: float
    remaining_samples: int
    worker_short_bpts: Dict[str, float] = field(default_factory=dict)
    worker_long_bpts: Dict[str, float] = field(default_factory=dict)
    worker_throughputs: Dict[str, float] = field(default_factory=dict)
    slowness_ratio: float = 1.4
    # Server-tier membership and signals (empty/default for worker-only
    # autoscaling; ``active_servers`` is ordered by join time like workers).
    active_servers: List[str] = field(default_factory=list)
    pending_servers: int = 0
    min_servers: int = 1
    max_servers: Optional[int] = None
    server_queue_depths: Dict[str, int] = field(default_factory=dict)
    server_long_bpts: Dict[str, float] = field(default_factory=dict)
    # Per-server *heat* from the shard map's hot-key weights (owned weight
    # relative to the uniform share; 1.0 == even).  Empty under uniform
    # weights, in which case the policies fall back to raw counts.
    server_shard_weights: Dict[str, float] = field(default_factory=dict)
    # Windowed serving-tier SLO snapshot (arrival_rps, shed_rate, inflight,
    # and p99_s when the window saw completions).  None when the scenario
    # has no serving traffic — the serving-slo policy then stands down.
    serving: Optional[Dict[str, float]] = None

    @property
    def committed_workers(self) -> int:
        """Active plus pending membership (what a scale-out adds on top of)."""
        return len(self.active_workers) + self.pending_workers

    @property
    def headroom(self) -> int:
        """How many more workers may be requested before hitting the cap."""
        if self.max_workers is None:
            return 2**31
        return max(0, self.max_workers - self.committed_workers)

    @property
    def shrinkable(self) -> int:
        """How many active workers may retire before hitting the floor."""
        return max(0, len(self.active_workers) - self.min_workers)

    def newest_active(self, count: int) -> List[str]:
        """The ``count`` most recently joined active workers (LIFO order)."""
        if count <= 0:
            return []
        return list(reversed(self.active_workers[-count:]))

    def estimated_remaining_s(self) -> Optional[float]:
        """Remaining work over aggregate fleet throughput (None when unknown)."""
        total = sum(self.worker_throughputs.get(worker, 0.0)
                    for worker in self.active_workers)
        if total <= 0:
            return None
        return self.remaining_samples / total

    # -- server tier --------------------------------------------------------------
    @property
    def committed_servers(self) -> int:
        """Active plus pending server membership."""
        return len(self.active_servers) + self.pending_servers

    @property
    def server_headroom(self) -> int:
        """How many more servers may be requested before hitting the cap."""
        if self.max_servers is None:
            return 2**31
        return max(0, self.max_servers - self.committed_servers)

    @property
    def server_shrinkable(self) -> int:
        """How many active servers may retire before hitting the floor."""
        return max(0, len(self.active_servers) - self.min_servers)

    def newest_active_servers(self, count: int) -> List[str]:
        """The ``count`` most recently joined active servers (LIFO order)."""
        if count <= 0:
            return []
        return list(reversed(self.active_servers[-count:]))

    def weighted_server_depths(self) -> Dict[str, float]:
        """Queue depth per *active* server, scaled by its hot-shard heat.

        Two deliberate choices: every active server appears — one that never
        enqueued anything is a drained server at depth 0, not a gap in the
        mean (excluding it skewed the shrink trigger upward and delayed
        scale-in) — and with ``server_shard_weights`` present each raw depth
        is multiplied by the server's heat, so a modest backlog on the
        server owning the hot keys reads as the large share of pending work
        it actually is.  Under uniform weights the values are the raw
        (integer) depths.
        """
        weights = self.server_shard_weights
        depths: Dict[str, float] = {}
        for server in self.active_servers:
            depth = self.server_queue_depths.get(server, 0)
            if weights:
                # Heat 0 — an active server that owns no primary weight
                # right now (e.g. promoted away and freshly recovered) —
                # must not zero out a real backlog: treat it as uniform,
                # mirroring ContendedServerPolicy's guard, instead of
                # hiding the server from the max trigger and dragging the
                # shrink mean toward zero.
                depth = depth * (weights.get(server, 1.0) or 1.0)
            depths[server] = depth
        return depths


class AutoscalerPolicy:
    """Base class: a named, deterministic scaling decision function."""

    name = "base"

    def decide(self, context: ElasticContext) -> List[Action]:
        """Return the scaling actions for one control round (may be empty)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for logs and reports."""
        return self.name


class UtilizationThresholdPolicy(AutoscalerPolicy):
    """Scale with the estimated time-to-finish of the remaining workload.

    While the fleet's estimated remaining time exceeds ``scale_out_horizon_s``
    — i.e. the committed capacity is insufficient for the backlog — request
    one worker per round, but only when the cluster scheduler is idle enough
    that the pod would actually arrive in time to help.  Once the remaining
    time falls below ``scale_in_horizon_s`` the marginal worker no longer
    pays for itself; retire the newest one per round.
    """

    name = "utilization"

    def __init__(self, scale_out_horizon_s: float = 120.0,
                 scale_in_horizon_s: float = 20.0,
                 step: int = 1) -> None:
        if scale_out_horizon_s <= scale_in_horizon_s:
            raise ValueError("scale_out_horizon_s must exceed scale_in_horizon_s")
        if step <= 0:
            raise ValueError("step must be positive")
        self.scale_out_horizon_s = float(scale_out_horizon_s)
        self.scale_in_horizon_s = float(scale_in_horizon_s)
        self.step = int(step)

    def decide(self, context: ElasticContext) -> List[Action]:
        remaining = context.estimated_remaining_s()
        if remaining is None:
            return []
        if (remaining > self.scale_out_horizon_s and not context.cluster_busy
                and context.headroom > 0):
            return [ScaleOut(num_workers=min(self.step, context.headroom),
                             reason=f"eta {remaining:.0f}s over horizon")]
        if remaining < self.scale_in_horizon_s and context.shrinkable > 0:
            count = min(self.step, context.shrinkable)
            return [ScaleIn(node_names=tuple(context.newest_active(count)),
                            reason=f"eta {remaining:.0f}s under horizon")]
        return []


class StragglerPressurePolicy(AutoscalerPolicy):
    """Retire a persistent straggler instead of dragging it.

    Detection reuses the AntDT long-window criterion (mean BPT ≥ λ · fleet
    mean).  Where KILL_RESTART pays a relaunch to *keep* the node, this
    policy removes it from the membership entirely — the DDS requeues its
    in-flight shard and the healthy fleet absorbs the data.  With
    ``replace=True`` a healthy replacement pod is requested at the same time
    (when the scheduler is not busy), trading membership size for quality.
    """

    name = "straggler-pressure"

    def __init__(self, replace: bool = False,
                 slowness_ratio: Optional[float] = None) -> None:
        self.replace = bool(replace)
        self.slowness_ratio = slowness_ratio

    def decide(self, context: ElasticContext) -> List[Action]:
        long = {worker: bpt for worker, bpt in context.worker_long_bpts.items()
                if worker in context.active_workers}
        if len(long) < 2 or context.shrinkable <= 0:
            return []
        ratio = self.slowness_ratio if self.slowness_ratio is not None \
            else context.slowness_ratio
        report = detect_stragglers(long, ratio)
        if not report.stragglers:
            return []
        # Retire the single worst offender per round; ranking by (BPT, name)
        # keeps ties deterministic.
        worst = max(report.stragglers, key=lambda worker: (long[worker], worker))
        actions: List[Action] = [ScaleIn(node_names=(worst,),
                                         reason="persistent straggler pressure")]
        if self.replace and not context.cluster_busy and context.headroom > 0:
            actions.append(ScaleOut(num_workers=1, reason="straggler replacement"))
        return actions


class ScheduledCapacityPolicy(AutoscalerPolicy):
    """Follow a deterministic capacity plan of ``[time_s, target]`` steps.

    At every decision round the target is the last step whose time has been
    reached; the policy emits whatever scale-out/scale-in delta moves the
    *committed* membership (active + pending) to the target, clamped to the
    context's min/max bounds.  Steps must be time-sorted.
    """

    name = "scheduled-capacity"

    def __init__(self, schedule: Sequence[Sequence[float]]) -> None:
        steps: List[Tuple[float, int]] = []
        for step in schedule:
            time_s, target = step
            steps.append((float(time_s), int(target)))
        if not steps:
            raise ValueError("a capacity schedule requires at least one step")
        if any(time_s < 0 for time_s, _ in steps):
            raise ValueError("schedule times must be non-negative")
        if any(target < 1 for _, target in steps):
            raise ValueError("schedule targets must be at least 1")
        if steps != sorted(steps, key=lambda step: step[0]):
            raise ValueError("schedule steps must be sorted by time")
        self.schedule: Tuple[Tuple[float, int], ...] = tuple(steps)

    def target_at(self, now: float) -> Optional[int]:
        """The capacity target in effect at ``now`` (None before step one)."""
        target: Optional[int] = None
        for time_s, step_target in self.schedule:
            if time_s <= now:
                target = step_target
        return target

    def decide(self, context: ElasticContext) -> List[Action]:
        target = self.target_at(context.now)
        if target is None:
            return []
        if context.max_workers is not None:
            target = min(target, context.max_workers)
        target = max(target, context.min_workers)
        delta = target - context.committed_workers
        if delta > 0:
            count = min(delta, context.headroom)
            if count <= 0:
                return []
            return [ScaleOut(num_workers=count,
                             reason=f"capacity plan target {target}")]
        if delta < 0:
            count = min(-delta, context.shrinkable)
            if count <= 0:
                return []
            return [ScaleIn(node_names=tuple(context.newest_active(count)),
                            reason=f"capacity plan target {target}")]
        return []


class ServerQueueDepthPolicy(AutoscalerPolicy):
    """Scale the serving tier with its push-queue backlog.

    A backed-up server queue is the direct symptom of an undersized (or
    contended) PS tier: every worker's :math:`T^s_i` grows with it.  The
    scale-out trigger is the *deepest* queue — a single hot server throttles
    the whole job even when its siblings idle, so a mean would hide exactly
    the case that matters — while the scale-in trigger is the *mean*: the
    tier only shrinks once the backlog has drained everywhere.  Scale-out is
    additionally gated on the cluster scheduler being idle enough that the
    pod would arrive in time to help.

    Depths are *weighted* (:meth:`ElasticContext.weighted_server_depths`):
    with non-uniform shard weights a queue entry on the server owning the
    hot keys counts for proportionally more, so the policy sees heat where a
    raw count would under-read the one server that matters; active servers
    missing from the depth snapshot count as drained (depth 0) rather than
    being silently excluded from the shrink mean.
    """

    name = "server-queue-depth"

    def __init__(self, scale_out_depth: float = 4.0,
                 scale_in_depth: float = 0.25,
                 step: int = 1) -> None:
        if scale_out_depth <= scale_in_depth:
            raise ValueError("scale_out_depth must exceed scale_in_depth")
        if step <= 0:
            raise ValueError("step must be positive")
        self.scale_out_depth = float(scale_out_depth)
        self.scale_in_depth = float(scale_in_depth)
        self.step = int(step)

    def decide(self, context: ElasticContext) -> List[Action]:
        depths = context.weighted_server_depths()
        if not depths:
            return []
        max_depth = max(depths.values())
        mean_depth = sum(depths.values()) / len(depths)
        if (max_depth > self.scale_out_depth and not context.cluster_busy
                and context.server_headroom > 0):
            return [ScaleOutServers(
                num_servers=min(self.step, context.server_headroom),
                reason=f"max queue depth {max_depth} over threshold")]
        if mean_depth < self.scale_in_depth and context.server_shrinkable > 0:
            count = min(self.step, context.server_shrinkable)
            return [ScaleInServers(
                node_names=tuple(context.newest_active_servers(count)),
                reason=f"mean queue depth {mean_depth:.2f} under threshold")]
        return []


class ContendedServerPolicy(AutoscalerPolicy):
    """Retire a persistently contended server and (optionally) replace it.

    Detection reuses the AntDT long-window criterion over per-request server
    handling times (mean handling ≥ λ · tier mean).  Where KILL_RESTART pays
    a relaunch to keep the node, this policy removes it from the serving
    membership entirely — its parameter shards re-partition onto the healthy
    survivors and its queued pushes re-route.  With ``replace=True`` a
    healthy replacement pod is requested in the same round, but only when
    the scheduler's pending-time forecast (``max_pending_s``) says the pod
    would arrive soon enough to matter — the server-tier analogue of the
    paper's busy-cluster gate.

    With non-uniform shard weights the observed handling times are first
    normalised by each server's heat: a server slow *because* it owns the
    hot keys is loaded, not contended — retiring it only moves the heat to
    the next owner — so only servers slow beyond what their weight share
    explains are flagged.
    """

    name = "contended-server"

    def __init__(self, replace: bool = True,
                 slowness_ratio: Optional[float] = None,
                 max_pending_s: float = 300.0) -> None:
        if max_pending_s < 0:
            raise ValueError("max_pending_s must be non-negative")
        self.replace = bool(replace)
        self.slowness_ratio = slowness_ratio
        self.max_pending_s = float(max_pending_s)

    def decide(self, context: ElasticContext) -> List[Action]:
        weights = context.server_shard_weights
        long = {server: bpt for server, bpt in context.server_long_bpts.items()
                if server in context.active_servers}
        if weights:
            # Heat 0 (a server owning no primary weight) has no hot-key
            # excuse for slowness; treat it as uniform rather than divide
            # by zero.
            long = {server: bpt / (weights.get(server, 1.0) or 1.0)
                    for server, bpt in long.items()}
        if len(long) < 2 or context.server_shrinkable <= 0:
            return []
        ratio = self.slowness_ratio if self.slowness_ratio is not None \
            else context.slowness_ratio
        report = detect_stragglers(long, ratio)
        if not report.stragglers:
            return []
        worst = max(report.stragglers, key=lambda server: (long[server], server))
        actions: List[Action] = [ScaleInServers(
            node_names=(worst,), reason="persistent server contention")]
        if (self.replace and not context.cluster_busy
                and context.pending_time_s <= self.max_pending_s
                and context.server_headroom > 0):
            actions.append(ScaleOutServers(num_servers=1,
                                           reason="contended-server replacement"))
        return actions


class ServingSLOPolicy(AutoscalerPolicy):
    """Scale the server tier on the serving workload's SLO, not its backlog.

    The queue-depth policy watches the *training* push queues; this one
    watches what the tier exists for under colocation — request latency and
    shedding.  Scale out while the windowed serving snapshot breaches either
    budget: shed rate above ``max_shed_rate`` (the tier is actively
    degrading responses) or p99 latency above ``target_p99_s`` (it is about
    to).  Scale the newest servers back in only when the window is clean —
    zero shedding *and* p99 under ``scale_in_fraction`` of the target with
    real traffic present — so a tier scaled out for a flash crowd returns
    to size afterwards.  Scale-out is gated on the cluster scheduler being
    idle enough that the pod would arrive in time to help, like every other
    grow trigger.

    Stands down (no actions) when the context carries no serving snapshot:
    wiring the policy into a scenario without serving traffic is inert
    rather than wrong.
    """

    name = "serving-slo"

    def __init__(self, target_p99_s: float = 0.5,
                 max_shed_rate: float = 0.01,
                 scale_in_fraction: float = 0.25,
                 min_arrival_rps: float = 1.0,
                 step: int = 1) -> None:
        if target_p99_s <= 0:
            raise ValueError("target_p99_s must be positive")
        if not 0.0 <= max_shed_rate < 1.0:
            raise ValueError("max_shed_rate must lie in [0, 1)")
        if not 0.0 < scale_in_fraction < 1.0:
            raise ValueError("scale_in_fraction must lie in (0, 1)")
        if min_arrival_rps < 0:
            raise ValueError("min_arrival_rps must be non-negative")
        if step <= 0:
            raise ValueError("step must be positive")
        self.target_p99_s = float(target_p99_s)
        self.max_shed_rate = float(max_shed_rate)
        self.scale_in_fraction = float(scale_in_fraction)
        self.min_arrival_rps = float(min_arrival_rps)
        self.step = int(step)

    def decide(self, context: ElasticContext) -> List[Action]:
        serving = context.serving
        if not serving:
            return []
        shed_rate = serving.get("shed_rate", 0.0)
        p99 = serving.get("p99_s")
        arrival_rps = serving.get("arrival_rps", 0.0)
        breached: Optional[str] = None
        if shed_rate > self.max_shed_rate:
            breached = f"shed rate {shed_rate:.3f} over {self.max_shed_rate}"
        elif p99 is not None and p99 > self.target_p99_s:
            breached = f"p99 {p99:.3f}s over {self.target_p99_s}s"
        if breached:
            if context.cluster_busy or context.server_headroom <= 0:
                return []
            return [ScaleOutServers(
                num_servers=min(self.step, context.server_headroom),
                reason=f"serving SLO breach: {breached}")]
        if (shed_rate == 0.0 and arrival_rps >= self.min_arrival_rps
                and p99 is not None
                and p99 < self.scale_in_fraction * self.target_p99_s
                and context.server_shrinkable > 0):
            count = min(self.step, context.server_shrinkable)
            return [ScaleInServers(
                node_names=tuple(context.newest_active_servers(count)),
                reason=f"serving SLO clear: p99 {p99:.3f}s well under target")]
        return []


#: Registry of policy factories, keyed by the name used in ``ElasticSpec``.
POLICIES: Dict[str, Callable[..., AutoscalerPolicy]] = {
    UtilizationThresholdPolicy.name: UtilizationThresholdPolicy,
    StragglerPressurePolicy.name: StragglerPressurePolicy,
    ScheduledCapacityPolicy.name: ScheduledCapacityPolicy,
}

#: Registry of server-tier policy factories, keyed by the name used in the
#: ``servers`` section of an ``ElasticSpec``.  Kept separate from
#: :data:`POLICIES`: a worker policy emits worker actions and would silently
#: do the wrong thing if wired into the server tier (and vice versa).
SERVER_POLICIES: Dict[str, Callable[..., AutoscalerPolicy]] = {
    ServerQueueDepthPolicy.name: ServerQueueDepthPolicy,
    ContendedServerPolicy.name: ContendedServerPolicy,
    ServingSLOPolicy.name: ServingSLOPolicy,
}


def make_policy(name: str, **params: object) -> AutoscalerPolicy:
    """Instantiate a registered policy by name with JSON-safe parameters."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown autoscaler policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    return factory(**params)


def make_server_policy(name: str, **params: object) -> AutoscalerPolicy:
    """Instantiate a registered server-tier policy by name."""
    try:
        factory = SERVER_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown server autoscaler policy {name!r}; "
            f"available: {sorted(SERVER_POLICIES)}"
        ) from None
    return factory(**params)

"""Trace exporters: canonical JSONL and Chrome trace-event JSON.

Both exporters serialize the recorder's deterministic
``(time, track, sequence)`` record order with sorted keys and fixed
separators, so a fixed spec and seed produces byte-identical output across
serial vs parallel sweeps and coalesce on vs off.

* :func:`export_jsonl` — one compact JSON object per line, a header line
  first.  The grep-friendly form, and what the determinism tests compare.
* :func:`export_chrome_trace` — the Chrome trace-event JSON format
  (``traceEvents`` with ``X`` complete spans, ``C`` counters, ``i`` instants
  and ``M`` thread-name metadata).  Load the file at https://ui.perfetto.dev
  to browse the run on a timeline; one "thread" per track, timestamps in
  microseconds of simulation time.
* :func:`validate_chrome_trace` — a structural schema check the trace-smoke
  CI step runs against the exported document.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .recorder import TraceRecorder

__all__ = ["TRACE_FORMAT", "export_jsonl", "export_chrome_trace",
           "validate_chrome_trace"]

#: Format tag written into every trace header (bump on breaking changes).
TRACE_FORMAT = "repro-trace/1"

#: One shared fake process id: the whole simulation is one logical process.
_PID = 1


def _dumps(obj: object) -> str:
    """Canonical compact JSON: sorted keys, no whitespace padding."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def export_jsonl(recorder: TraceRecorder, scenario: str,
                 spec_key: Optional[str] = None) -> str:
    """The recorder's records as canonical JSONL (header line first)."""
    header: Dict[str, object] = {
        "kind": "header", "format": TRACE_FORMAT, "scenario": scenario,
        "records": len(recorder), "decisions": len(recorder.decisions),
    }
    if spec_key is not None:
        header["spec_key"] = spec_key
    lines = [_dumps(header)]
    lines.extend(_dumps(record) for record in recorder.sorted_records())
    return "\n".join(lines) + "\n"


def _microseconds(seconds: float) -> float:
    # Chrome trace-event timestamps are microseconds; rounding keeps the
    # serialized floats free of binary-multiplication noise.
    return round(seconds * 1e6, 3)


def export_chrome_trace(recorder: TraceRecorder, scenario: str) -> str:
    """The recorder's records as a Chrome trace-event JSON document."""
    records = recorder.sorted_records()
    tracks = sorted({str(record["track"]) for record in records})
    tid = {track: index + 1 for index, track in enumerate(tracks)}
    events: List[Dict[str, object]] = [{
        "ph": "M", "pid": _PID, "tid": 0,
        "name": "process_name", "args": {"name": scenario},
    }]
    for track in tracks:
        events.append({
            "ph": "M", "pid": _PID, "tid": tid[track],
            "name": "thread_name", "args": {"name": track},
        })
    for record in records:
        kind = record["kind"]
        track_id = tid[str(record["track"])]
        if kind == "span":
            start = float(record["t0"])
            event: Dict[str, object] = {
                "ph": "X", "pid": _PID, "tid": track_id,
                "name": record["name"], "cat": record.get("cat", "span"),
                "ts": _microseconds(start),
                "dur": _microseconds(float(record["t1"]) - start),
            }
            if "args" in record:
                event["args"] = record["args"]
        elif kind in ("gauge", "counter"):
            event = {
                "ph": "C", "pid": _PID, "tid": track_id,
                "name": f"{record['track']}/{record['name']}",
                "ts": _microseconds(float(record["t"])),
                "args": {str(record["name"]): record["value"]},
            }
        elif kind == "decision":
            args = {key: value for key, value in record.items()
                    if key not in ("kind", "track", "t")}
            event = {
                "ph": "i", "pid": _PID, "tid": track_id, "s": "t",
                "name": f"decision:{record['verdict']}",
                "ts": _microseconds(float(record["t"])), "args": args,
            }
        else:  # instant event
            event = {
                "ph": "i", "pid": _PID, "tid": track_id, "s": "t",
                "name": record["name"],
                "ts": _microseconds(float(record["t"])),
            }
            if "args" in record:
                event["args"] = record["args"]
        events.append(event)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": TRACE_FORMAT, "scenario": scenario},
    }
    return _dumps(document) + "\n"


def validate_chrome_trace(document: object) -> List[str]:
    """Structural schema check of a Chrome trace-event document.

    Accepts the JSON text or the parsed dict; returns a list of problems
    (empty when the document is well-formed).  This is what ``--validate``
    and the ``trace-smoke`` CI step run.
    """
    errors: List[str] = []
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except ValueError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "X", "C", "i"):
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or "pid" not in event:
            errors.append(f"{where}: missing name/pid")
            continue
        if phase == "M":
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}: metadata without args")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{where}: complete event without numeric dur")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(value, (int, float)) and not isinstance(value, bool)
                    for value in args.values()):
                errors.append(f"{where}: counter args must be numeric")
    return errors

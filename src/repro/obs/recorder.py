"""Deterministic simulation-time trace recording.

The observability layer records what a run *did* — worker iteration spans,
server queue-depth gauges, membership and resharding events, autoscaler
decisions — keyed strictly by **simulation time**, never wall clock.  The
recorder is passive: it observes state the simulation already computes and
never schedules events, resumes processes, or mutates anything a component
reads, so attaching one cannot perturb a run's fingerprint.

Determinism contract
--------------------
Traces must be byte-identical for a fixed spec and seed regardless of *how*
the simulation executed: serial vs process-pool sweeps, cohort coalescing on
vs off.  Two rules make that hold:

* **Record only at mode-invariant sites.**  Every instrumentation point sits
  on state the golden fingerprints already pin across both coalesce modes
  (the per-iteration BPT series, membership/reshard logs, autoscaler decision
  rounds) — so each *track*'s stream of records is identical in content and
  order under either execution mode.
* **Sort across tracks at export time.**  The interleaving of callbacks
  *between* tracks at equal timestamps is heap-order noise that differs
  between modes, so :meth:`TraceRecorder.sorted_records` orders the stream by
  ``(time, track, per-track sequence)`` — a total order computed only from
  mode-invariant keys.

The default recorder is the :data:`NULL_RECORDER` singleton, whose ``enabled``
attribute is a plain ``False``: hot loops hoist ``recorder.enabled`` into a
local once and pay a single branch per iteration, so tracing-off is free and
every golden trace stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["Decision", "NullRecorder", "NULL_RECORDER", "TraceRecorder"]

#: Decimal places times and float values are rounded to at record time —
#: the same precision the golden fingerprints use.
_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), _DIGITS)


def _json_safe(value: object) -> object:
    """Clamp a recorded value to the JSON-safe scalars traces may contain."""
    if isinstance(value, bool) or isinstance(value, (int, str)) or value is None:
        return value
    if isinstance(value, float):
        return _round(value)
    return str(value)


def _safe_args(args: Optional[Mapping[str, object]]) -> Optional[Dict[str, object]]:
    if not args:
        return None
    return {str(key): _json_safe(value) for key, value in args.items()}


@dataclass(frozen=True)
class Decision:
    """One autoscaler policy evaluation: inputs, verdict, and the reason.

    A decision is recorded for *every* evaluation round — including rounds the
    cooldown suppressed (``verdict="cooldown"``), rounds where the policy saw
    nothing to do (``verdict="hold"``), and actions the executor refused
    (``verdict="denied"``) — so a policy misfire is diagnosable from the trace
    alone.  ``reason`` is always human-readable.
    """

    time_s: float
    tier: str          #: ``"workers"`` or ``"servers"``
    policy: str        #: registered policy name
    verdict: str       #: scale-out / scale-in / hold / cooldown / denied / ...
    reason: str
    inputs: Mapping[str, object] = field(default_factory=dict)
    requested: Tuple[str, ...] = ()   #: node names a scale-in targeted
    granted: Tuple[str, ...] = ()     #: node names the executor actually moved
    count: int = 0                    #: node count a scale-out requested

    def to_record(self) -> Dict[str, object]:
        """The decision as a JSON-safe trace record."""
        return {
            "kind": "decision",
            "track": "autoscaler",
            "t": _round(self.time_s),
            "tier": self.tier,
            "policy": self.policy,
            "verdict": self.verdict,
            "reason": self.reason,
            "inputs": _safe_args(self.inputs) or {},
            "requested": list(self.requested),
            "granted": list(self.granted),
            "count": int(self.count),
        }


class NullRecorder:
    """The zero-overhead default: every API is a no-op.

    ``enabled`` is a plain class attribute (not a property), so hot paths can
    read it once into a local and skip all instrumentation with one branch.
    """

    __slots__ = ()
    enabled = False

    def span(self, track: str, name: str, start: float, end: float,
             cat: str = "", args: Optional[Mapping[str, object]] = None) -> None:
        pass

    def gauge(self, track: str, name: str, time: float, value: object) -> None:
        pass

    def counter(self, track: str, name: str, time: float, value: object) -> None:
        pass

    def event(self, track: str, name: str, time: float,
              args: Optional[Mapping[str, object]] = None) -> None:
        pass

    def decision(self, decision: Decision) -> None:
        pass


#: Shared do-nothing recorder; the default everywhere a recorder is accepted.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects spans, gauges, counters, instants and decisions for one run.

    A *track* is one horizontal timeline in the exported trace — a worker, a
    server, or a logical stream like ``membership`` or ``autoscaler``.  Within
    a track, records keep their append order (via a per-track sequence
    number); across tracks, :meth:`sorted_records` imposes the deterministic
    ``(time, track, sequence)`` total order the exporters serialize.
    """

    enabled = True

    def __init__(self) -> None:
        # (sort_time, track, per-track seq, payload) — payload is JSON-safe.
        self._records: List[Tuple[float, str, int, Dict[str, object]]] = []
        self._seq: Dict[str, int] = {}
        #: Every autoscaler :class:`Decision`, in evaluation order.
        self.decisions: List[Decision] = []

    # -- recording ----------------------------------------------------------
    def _push(self, sort_time: float, track: str,
              payload: Dict[str, object]) -> None:
        seq = self._seq.get(track, 0)
        self._seq[track] = seq + 1
        self._records.append((float(sort_time), track, seq, payload))

    def span(self, track: str, name: str, start: float, end: float,
             cat: str = "", args: Optional[Mapping[str, object]] = None) -> None:
        """A completed interval ``[start, end]`` on ``track`` (sim seconds)."""
        payload: Dict[str, object] = {
            "kind": "span", "track": track, "name": name,
            "t0": _round(start), "t1": _round(end),
        }
        if cat:
            payload["cat"] = cat
        safe = _safe_args(args)
        if safe:
            payload["args"] = safe
        self._push(start, track, payload)

    def gauge(self, track: str, name: str, time: float, value: object) -> None:
        """A sampled instantaneous value (queue depth, member count, heat)."""
        self._push(time, track, {
            "kind": "gauge", "track": track, "name": name,
            "t": _round(time), "value": _json_safe(value),
        })

    def counter(self, track: str, name: str, time: float, value: object) -> None:
        """A cumulative value sampled at ``time`` (monotone counters)."""
        self._push(time, track, {
            "kind": "counter", "track": track, "name": name,
            "t": _round(time), "value": _json_safe(value),
        })

    def event(self, track: str, name: str, time: float,
              args: Optional[Mapping[str, object]] = None) -> None:
        """An instantaneous occurrence (membership change, reshard, failure)."""
        payload: Dict[str, object] = {
            "kind": "event", "track": track, "name": name, "t": _round(time),
        }
        safe = _safe_args(args)
        if safe:
            payload["args"] = safe
        self._push(time, track, payload)

    def decision(self, decision: Decision) -> None:
        """Record one autoscaler policy evaluation (see :class:`Decision`)."""
        self.decisions.append(decision)
        self._push(decision.time_s, "autoscaler", decision.to_record())

    # -- reading ------------------------------------------------------------
    def sorted_records(self) -> List[Dict[str, object]]:
        """Every record in the deterministic ``(time, track, seq)`` order."""
        return [payload for _, _, _, payload in
                sorted(self._records, key=lambda item: item[:3])]

    def counts(self) -> Dict[str, int]:
        """Record tallies by kind (``span`` / ``gauge`` / ``event`` / ...)."""
        tallies: Dict[str, int] = {}
        for _, _, _, payload in self._records:
            kind = str(payload["kind"])
            tallies[kind] = tallies.get(kind, 0) + 1
        return tallies

    def __len__(self) -> int:
        return len(self._records)

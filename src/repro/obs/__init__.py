"""Deterministic observability (``repro.obs``).

Simulation-time tracing and metrics for the whole stack: a
:class:`~repro.obs.recorder.TraceRecorder` with span/gauge/counter/event
APIs keyed by simulation time, an autoscaler decision log, and exporters to
JSONL and Chrome trace-event JSON (viewable in Perfetto).  Tracing off is the
:data:`~repro.obs.recorder.NULL_RECORDER` default and costs nothing; tracing
on is passive and byte-deterministic across serial/parallel sweeps and both
coalesce modes.  See the "Observability" section of README.md.
"""

from .export import (
    TRACE_FORMAT,
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
)
from .recorder import NULL_RECORDER, Decision, NullRecorder, TraceRecorder

# The capture drivers import the scenario/orchestrator layers, which in turn
# import modules that use ``repro.obs.recorder`` — loading them lazily keeps
# ``from repro.obs.recorder import NULL_RECORDER`` safe from low-level code.
_CAPTURE_EXPORTS = ("TraceCapture", "capture_trace", "run_trace_sweep",
                    "trace_payload")


def __getattr__(name: str):
    if name in _CAPTURE_EXPORTS:
        from . import capture

        return getattr(capture, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Decision",
    "NULL_RECORDER",
    "NullRecorder",
    "TRACE_FORMAT",
    "TraceCapture",
    "TraceRecorder",
    "capture_trace",
    "export_chrome_trace",
    "export_jsonl",
    "run_trace_sweep",
    "trace_payload",
    "validate_chrome_trace",
]

"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is the single declarative description of one operating
condition the paper's claims are evaluated under: cluster topology (size,
dedicated vs. non-dedicated, heterogeneous hardware, scheduler congestion),
straggler pattern (transient / persistent / server-side / mixed trace),
failure trace (evictions and machine faults injected mid-run), workload scale,
training method and seed.  Specs round-trip losslessly through
:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict` (and JSON), so a
scenario can be named, registered, diffed, and pinned to a golden trace.

The module is pure data plus resolution logic: building and *running* the
simulation lives in :mod:`repro.scenarios.matrix`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from ..baselines.registry import PS_METHODS
from ..elastic.spec import NO_ELASTIC, ElasticSpec
from ..experiments.stragglers import NO_STRAGGLERS, StragglerScenario
from ..experiments.workloads import SCALES, ExperimentScale
from ..serving.spec import NO_SERVING, ServingSpec
from ..sim.failures import ErrorCode

__all__ = [
    "TopologySpec",
    "FailureEvent",
    "FailureTraceSpec",
    "ScenarioSpec",
]


@dataclass(frozen=True)
class TopologySpec:
    """Cluster-shape knobs of a scenario.

    ``num_workers`` / ``num_servers`` of ``None`` keep the base scale's node
    counts.  ``slow_worker_fraction`` turns the leading fraction of workers
    into deterministic hardware stragglers (older machine series, P100 next to
    V100) slowed by ``slow_factor`` — composed on top of whatever contention
    the straggler pattern already injected.
    """

    num_workers: Optional[int] = None
    num_servers: Optional[int] = None
    dedicated: bool = True
    cluster_busy: bool = False
    slow_worker_fraction: float = 0.0
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.num_workers is not None and self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.num_servers is not None and self.num_servers < 0:
            raise ValueError("num_servers must be non-negative")
        if not 0.0 <= self.slow_worker_fraction <= 1.0:
            raise ValueError("slow_worker_fraction must lie in [0, 1]")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0")
        if self.slow_worker_fraction > 0.0 and self.slow_factor == 1.0:
            raise ValueError("a heterogeneous topology needs slow_factor > 1.0")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "num_workers": self.num_workers,
            "num_servers": self.num_servers,
            "dedicated": self.dedicated,
            "cluster_busy": self.cluster_busy,
            "slow_worker_fraction": self.slow_worker_fraction,
            "slow_factor": self.slow_factor,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TopologySpec":
        """Rebuild a topology from :meth:`to_dict` output (lossless)."""
        return cls(**data)


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled node termination in a failure trace.

    ``code`` is the :class:`~repro.sim.failures.ErrorCode` *value* (a string,
    to keep the spec JSON-safe); only retryable codes make sense in a trace —
    an unretryable error would abort the job rather than ride the failover
    path.
    """

    time_s: float
    node: str
    code: str = ErrorCode.JOB_EVICTION.value

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("failure times must be non-negative (the run starts at t=0)")
        # Normalise: accept an ErrorCode member too, but store the JSON-safe
        # string value.  Raises ValueError for unknown codes.
        object.__setattr__(self, "code", ErrorCode(self.code).value)

    @property
    def error_code(self) -> ErrorCode:
        """The typed error code."""
        return ErrorCode(self.code)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {"time_s": self.time_s, "node": self.node, "code": self.code}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FailureEvent":
        """Rebuild an event from :meth:`to_dict` output (lossless)."""
        return cls(**data)


@dataclass(frozen=True)
class FailureTraceSpec:
    """A deterministic schedule of node failures injected during the run."""

    events: Tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    @staticmethod
    def storm(nodes: Tuple[str, ...], start_s: float, interval_s: float,
              code: ErrorCode = ErrorCode.JOB_EVICTION) -> "FailureTraceSpec":
        """An eviction storm: the given nodes fail one after another.

        Models the cluster scheduler reclaiming capacity from a low-priority
        job — every ``interval_s`` seconds starting at ``start_s`` another node
        of the job is terminated with ``code``.
        """
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        return FailureTraceSpec(events=tuple(
            FailureEvent(time_s=start_s + index * interval_s, node=node, code=code.value)
            for index, node in enumerate(nodes)
        ))

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FailureTraceSpec":
        """Rebuild a trace from :meth:`to_dict` output (lossless)."""
        return cls(events=tuple(FailureEvent.from_dict(event) for event in data["events"]))


def _encode_scale(scale: ExperimentScale) -> Tuple[Tuple[str, object], ...]:
    """Every field of an :class:`ExperimentScale` as sorted (name, value) pairs."""
    return tuple(sorted(
        (spec_field.name, getattr(scale, spec_field.name))
        for spec_field in fields(ExperimentScale)
    ))


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully declarative operating condition for a PS training run.

    Attributes
    ----------
    name:
        Unique scenario name (registry key and golden-trace filename).
    method:
        Training method from :data:`repro.baselines.registry.PS_METHODS`.
    scale:
        Base workload scale: a name from
        :data:`repro.experiments.workloads.SCALES`, ``"auto"`` (derive a
        coherent configuration from ``topology.num_workers`` via
        :meth:`ExperimentScale.for_workers`), or ``"custom"`` (rebuild the
        scale entirely from ``scale_overrides``).
    seed:
        Seed for every random element (cluster node noise, transient-worker
        choice, failure-injector sampling).
    topology:
        Cluster-shape knobs (see :class:`TopologySpec`).
    stragglers:
        Straggler injection pattern
        (:class:`~repro.experiments.stragglers.StragglerScenario`).
    failures:
        Deterministic failure trace injected while the job runs.
    elastic:
        Elastic-scaling behaviour (:class:`~repro.elastic.spec.ElasticSpec`):
        a deterministic scale-out/scale-in schedule and/or an autoscaler
        policy.  Requires a DDS-based method — a static partition fixes the
        worker set at construction time.
    serving:
        Open-loop serving traffic driven against the PS tier while the job
        trains (:class:`~repro.serving.spec.ServingSpec`).  The default
        :data:`~repro.serving.spec.NO_SERVING` attaches nothing, and the
        section is omitted from the serialized form, so pre-serving specs
        keep their canonical bytes.
    iterations / epochs:
        Workload-length overrides on top of the base scale.
    scale_overrides:
        ``(field, value)`` pairs applied to the resolved scale via
        :func:`dataclasses.replace` — with ``scale="custom"`` they must cover
        every field and reconstruct the scale from scratch.
    """

    name: str
    method: str = "antdt-nd"
    scale: str = "small"
    seed: int = 0
    description: str = ""
    tags: Tuple[str, ...] = ()
    topology: TopologySpec = field(default_factory=TopologySpec)
    stragglers: StragglerScenario = NO_STRAGGLERS
    failures: FailureTraceSpec = field(default_factory=FailureTraceSpec)
    elastic: ElasticSpec = NO_ELASTIC
    serving: ServingSpec = NO_SERVING
    iterations: Optional[int] = None
    epochs: Optional[int] = None
    scale_overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.method not in PS_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; available: {sorted(PS_METHODS)}")
        if self.scale not in SCALES and self.scale not in ("auto", "custom"):
            raise ValueError(
                f"unknown scale {self.scale!r}; use one of {sorted(SCALES)}, "
                "'auto' (derive from topology.num_workers) or 'custom' "
                "(rebuild from scale_overrides)")
        if self.scale == "auto" and self.topology.num_workers is None:
            raise ValueError("scale='auto' requires topology.num_workers")
        if self.elastic and PS_METHODS[self.method].allocator != "dds":
            raise ValueError(
                f"elastic scaling requires a DDS-based method; {self.method!r} "
                "uses a static partition whose worker set is fixed at "
                "construction time")
        if self.iterations is not None and self.iterations <= 0:
            raise ValueError("iterations override must be positive")
        if self.epochs is not None and self.epochs <= 0:
            raise ValueError("epochs override must be positive")
        object.__setattr__(self, "tags", tuple(self.tags))
        object.__setattr__(self, "scale_overrides",
                           tuple((str(k), v) for k, v in self.scale_overrides))
        valid_fields = {spec_field.name for spec_field in fields(ExperimentScale)}
        for field_name, _ in self.scale_overrides:
            if field_name not in valid_fields:
                raise ValueError(f"unknown ExperimentScale field {field_name!r}")
        if self.scale == "custom":
            missing = valid_fields - {k for k, _ in self.scale_overrides}
            # Fields with defaults may be omitted; ExperimentScale's required
            # fields may not.  Resolution raises naturally, but fail early
            # with a clearer message for the common mistake.
            required = {"name", "num_workers", "num_servers", "per_worker_batch",
                        "iterations"}
            if required & missing:
                raise ValueError(
                    f"scale='custom' is missing required fields: {sorted(required & missing)}")

    # -- construction helpers -----------------------------------------------------
    @classmethod
    def for_scale(cls, scale: ExperimentScale, **kwargs: object) -> "ScenarioSpec":
        """Build a spec pinned to an explicit :class:`ExperimentScale` object.

        If the object is one of the registered named scales it is referenced
        by name; otherwise every field is encoded into ``scale_overrides``
        (``scale="custom"``) so the spec stays lossless and serializable.
        """
        registered = SCALES.get(scale.name)
        if registered is not None and registered == scale:
            return cls(scale=scale.name, **kwargs)
        return cls(scale="custom", scale_overrides=_encode_scale(scale), **kwargs)

    # -- resolution ---------------------------------------------------------------
    def _apply_overrides(self, base: ExperimentScale) -> ExperimentScale:
        """Apply ``scale_overrides`` on top of a resolved base scale."""
        if not self.scale_overrides:
            return base
        coerced = {}
        for key, value in self.scale_overrides:
            current = getattr(base, key)
            coerced[key] = type(current)(value)
        return replace(base, **coerced)

    def resolve_scale(self) -> ExperimentScale:
        """The fully resolved workload scale this scenario runs at."""
        topology = self.topology
        if self.scale == "auto":
            base = ExperimentScale.for_workers(
                topology.num_workers,
                num_servers=topology.num_servers,
                iterations=self.iterations,
                name=f"scenario-{self.name}",
            )
            base = self._apply_overrides(base)
        else:
            if self.scale == "custom":
                # The overrides *are* the scale here; nothing further to apply.
                base = ExperimentScale(**dict(self.scale_overrides))
            else:
                base = self._apply_overrides(SCALES[self.scale])
            if topology.num_workers is not None:
                base = base.with_workers(topology.num_workers, topology.num_servers)
            elif topology.num_servers is not None:
                base = replace(base, num_servers=topology.num_servers)
        if self.iterations is not None and base.iterations != self.iterations:
            base = replace(base, iterations=self.iterations)
        if self.epochs is not None and base.epochs != self.epochs:
            base = replace(base, epochs=self.epochs)
        return base

    # -- serialization -------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        data: Dict[str, object] = {
            "name": self.name,
            "method": self.method,
            "scale": self.scale,
            "seed": self.seed,
            "description": self.description,
            "tags": list(self.tags),
            "topology": self.topology.to_dict(),
            "stragglers": self.stragglers.to_dict(),
            "failures": self.failures.to_dict(),
            "elastic": self.elastic.to_dict(),
            "iterations": self.iterations,
            "epochs": self.epochs,
            "scale_overrides": [[key, value] for key, value in self.scale_overrides],
        }
        # Omit-when-default: serving arrived after the first golden traces
        # were pinned, so a scenario without it must serialize to the exact
        # bytes it always had.
        if self.serving:
            data["serving"] = self.serving.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (lossless round-trip)."""
        return cls(
            name=data["name"],
            method=data.get("method", "antdt-nd"),
            scale=data.get("scale", "small"),
            seed=data.get("seed", 0),
            description=data.get("description", ""),
            tags=tuple(data.get("tags", ())),
            topology=TopologySpec.from_dict(data.get("topology", {})),
            stragglers=StragglerScenario.from_dict(
                data.get("stragglers", NO_STRAGGLERS.to_dict())),
            failures=FailureTraceSpec.from_dict(data.get("failures", {"events": []})),
            elastic=ElasticSpec.from_dict(data.get("elastic", {})),
            serving=ServingSpec.from_dict(data.get("serving", {})),
            iterations=data.get("iterations"),
            epochs=data.get("epochs"),
            scale_overrides=tuple(
                (key, value) for key, value in data.get("scale_overrides", ())),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON form of the spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

"""Golden-trace fingerprints of deterministic scenario runs.

A fingerprint reduces one simulated run to a compact, byte-stable summary of
its *behaviour*: makespan, step counts, throughput, restart/failure history,
Controller actions, and per-worker event digests.  Two runs of the same
:class:`~repro.scenarios.spec.ScenarioSpec` must produce byte-identical
fingerprints (the simulator is deterministic given a seed), so checked-in
fingerprints act as golden traces: any behavioural drift — an engine fast-path
that reorders events, a refactor that changes a threshold — shows up as a
diff against ``tests/golden/traces/``.

Engine internals (event counts, queue sizes) are deliberately *excluded*:
perf PRs are free to change how the behaviour is computed, not what it is.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim.failures import FailureInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..psarch.job import PSRunResult
    from .spec import ScenarioSpec

__all__ = ["fingerprint", "canonical_json", "series_digest"]

#: Decimal places kept for times/values inside digests and summary floats.
#: Well above the simulator's event-granularity, well below accumulated
#: float-noise territory — reruns of a deterministic engine reproduce the
#: exact same arithmetic, so full precision would also work; the rounding
#: keeps the traces readable and diffable.
_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), _DIGITS)


def series_digest(times: List[float], values: List[float]) -> str:
    """Stable short digest of one (times, values) event series."""
    hasher = hashlib.sha256()
    for time, value in zip(times, values):
        hasher.update(f"{time:.{_DIGITS}e},{value:.{_DIGITS}e};".encode("ascii"))
    return hasher.hexdigest()[:16]


def canonical_json(payload: Dict[str, object]) -> str:
    """The canonical byte form golden traces are stored and compared in."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def fingerprint(spec: "ScenarioSpec", result: "PSRunResult",
                injector: Optional[FailureInjector] = None) -> Dict[str, object]:
    """Reduce one deterministic run to its golden-trace fingerprint."""
    metrics = result.metrics
    workers: Dict[str, Dict[str, object]] = {}
    if metrics is not None:
        for worker in metrics.tags("bpt"):
            series = metrics.series("bpt", worker)
            batch_series = metrics.series("batch_size", worker)
            workers[worker] = {
                "iterations": len(series),
                "bpt_digest": series_digest(series.times(), series.values()),
                "batch_digest": series_digest(batch_series.times(), batch_series.values()),
            }
    actions: Dict[str, int] = {}
    for action in result.action_log:
        key = action.action_type.value
        actions[key] = actions.get(key, 0) + 1
    failures: List[Dict[str, object]] = []
    if injector is not None:
        failures = [
            {"time_s": _round(event.time), "node": event.node_name, "code": event.code.value}
            for event in injector.history
        ]
    jct = result.jct
    payload = {
        "scenario": spec.name,
        "method": spec.method,
        "seed": spec.seed,
        "completed": result.completed,
        "jct_s": _round(jct),
        "total_samples": result.total_samples,
        "samples_confirmed": result.samples_confirmed,
        "throughput_samples_per_s": _round(result.samples_confirmed / jct) if jct > 0 else 0.0,
        "dropped_iterations": result.dropped_iterations,
        "done_shards": result.done_shards,
        "total_shards": result.total_shards,
        "restarts": {
            node: count for node, count in sorted(result.restarts_per_node.items()) if count
        },
        "actions": actions,
        "failures": failures,
        "workers": workers,
    }
    if (result.membership_events or result.server_membership_events
            or result.reshard_events):
        # Elastic membership churn is part of the pinned behaviour.  The key
        # is added only when churn occurred, so every fixed-fleet trace stays
        # byte-identical to its pre-elastic form.  (A warm-standby promotion
        # resharding without membership churn — a killed primary — counts:
        # pre-replication runs cannot produce reshard events without server
        # membership events, so the extra trigger changes no existing trace.)
        payload["elastic"] = _membership_section(result.membership_events)
    if result.server_membership_events or result.reshard_events:
        # Server-tier churn and the shard re-partitionings it caused.  Both
        # sub-keys appear only when the serving membership actually changed,
        # so every pre-existing trace — fixed-fleet and worker-elastic alike
        # — keeps its exact bytes.
        if result.server_membership_events:
            payload["elastic"]["servers"] = _membership_section(
                result.server_membership_events)
        resharding: Dict[str, object] = {
            "events": [
                _reshard_event(event) for event in result.reshard_events
            ],
            "total_moved_shards": sum(event.moved_shards
                                      for event in result.reshard_events),
            "shard_map_digest": result.shard_map_digest,
        }
        # Replication/weighting keys appear only when the feature is on, so
        # replicas=0 uniform-weight traces keep their exact bytes.
        promoted_total = sum(event.promoted_shards
                             for event in result.reshard_events)
        if promoted_total:
            resharding["promoted_total"] = promoted_total
        if result.shard_replicas:
            resharding["replicas"] = result.shard_replicas
        if result.shard_weights:
            resharding["shard_weights"] = result.shard_weights
        payload["elastic"]["resharding"] = resharding
    if result.serving is not None:
        # Serving SLO summary (goodput, p50/p99 latency, shed counts by
        # reason, per-tenant breakdown).  The key appears only when the
        # scenario attached serving traffic, so every training-only trace
        # keeps its exact bytes.
        payload["serving"] = _rounded_tree(result.serving)
    return payload


def _rounded_tree(value: object) -> object:
    """Round every float in a nested JSON-safe structure to ``_DIGITS``."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return _round(value)
    if isinstance(value, dict):
        return {key: _rounded_tree(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded_tree(item) for item in value]
    return value


def _reshard_event(event) -> Dict[str, object]:
    """Serialize one reshard event (``promoted_shards`` only when nonzero)."""
    data: Dict[str, object] = {
        "time_s": _round(event.time_s), "kind": event.kind,
        "trigger": event.trigger, "moved_shards": event.moved_shards,
        "cost_s": _round(event.cost_s)}
    if event.promoted_shards:
        data["promoted_shards"] = event.promoted_shards
    return data


def _membership_section(membership_events) -> Dict[str, object]:
    """Serialize one tier's membership-event list (worker or server)."""
    counts = {"join_requested": 0, "joined": 0, "left": 0}
    events = []
    for event in membership_events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        events.append({"time_s": _round(event.time_s), "event": event.kind,
                       "node": event.node})
    return {
        "events": events,
        "joined": counts["joined"],
        "left": counts["left"],
        "unplaced": counts["join_requested"] - counts["joined"],
    }

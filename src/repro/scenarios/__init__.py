"""Declarative scenario subsystem with golden-trace fingerprints.

One :class:`ScenarioSpec` describes one operating condition — cluster
topology, contention/straggler pattern, failure trace, workload scale, method
and seed — as serializable data.  The named registry holds the built-in
matrix (dedicated/non-dedicated, transient/persistent stragglers, eviction
storms, checkpoint-free failover, heterogeneous hardware, 120-worker scale);
:class:`ScenarioMatrix` sweeps any subset through the experiment runner; and
:func:`fingerprint` reduces each deterministic run to a compact golden trace
pinned under ``tests/golden/traces/``.
"""

from .spec import FailureEvent, FailureTraceSpec, ScenarioSpec, TopologySpec
from .fingerprint import canonical_json, fingerprint, series_digest
from .matrix import (
    ScenarioMatrix,
    ScenarioResult,
    build_scenario_job,
    run_scenario,
)
from .registry import (
    SCENARIOS,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "FailureEvent",
    "FailureTraceSpec",
    "ScenarioMatrix",
    "ScenarioResult",
    "SCENARIOS",
    "ScenarioSpec",
    "TopologySpec",
    "all_scenarios",
    "build_scenario_job",
    "canonical_json",
    "fingerprint",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "series_digest",
]

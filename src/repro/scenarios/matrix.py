"""Build, run, and sweep declarative scenarios.

:func:`build_scenario_job` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into a ready-to-run :class:`~repro.psarch.job.PSTrainingJob` (cluster built,
stragglers applied, heterogeneity composed, failure trace armed);
:func:`run_scenario` runs it and reduces the outcome to a structured
:class:`ScenarioResult` with a golden-trace fingerprint; and
:class:`ScenarioMatrix` sweeps a whole grid of scenarios through the
orchestrator (:mod:`repro.orchestrator`), which adds process-pool parallelism
and content-addressed result caching on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.registry import get_method
from ..elastic.autoscaler import Autoscaler, AutoscalerConfig
from ..elastic.policies import make_policy, make_server_policy
from ..elastic.spec import ElasticSpec, ScaleEvent
from ..experiments.runner import PSExperiment
from ..psarch.backend import ComputeBackend
from ..psarch.job import PSRunResult, PSTrainingJob
from ..sim.cluster import Cluster
from ..sim.contention import CompositeContention, DeterministicSlowdown
from ..sim.failures import FailureInjector
from .fingerprint import canonical_json, fingerprint
from .spec import FailureEvent, ScenarioSpec, TopologySpec

__all__ = ["ScenarioResult", "ScenarioMatrix", "build_scenario_job", "run_scenario"]

#: Distinguishes "use the default store" from an explicit ``store=None``.
_UNSET = object()


def _build_experiment(spec: ScenarioSpec,
                      backend: Optional[ComputeBackend] = None,
                      evaluate_after_run: bool = False,
                      num_samples: Optional[int] = None,
                      track_coverage: bool = False,
                      failure_injector: Optional[FailureInjector] = None,
                      coalesce: Optional[bool] = None,
                      recorder: Optional[object] = None) -> PSExperiment:
    """The bare :class:`PSExperiment` behind a scenario spec.

    Internal: the experiment alone carries neither the failure trace nor the
    topology heterogeneity — :func:`build_scenario_job` arms those on the
    built job and is the public entry point.  The keyword overrides cover the
    handful of knobs that are *not* part of the declarative scenario (a real
    compute backend, dataset-driven sample counts, coverage accounting) so
    experiments like the §VII-D integrity runs can still be spec-driven.
    """
    injector = failure_injector if failure_injector is not None else FailureInjector(
        np.random.default_rng(spec.seed))
    return PSExperiment(
        method=get_method(spec.method),
        scale=spec.resolve_scale(),
        scenario=spec.stragglers,
        seed=spec.seed,
        dedicated=spec.topology.dedicated,
        cluster_busy=spec.topology.cluster_busy,
        backend=backend,
        evaluate_after_run=evaluate_after_run,
        epochs=spec.epochs,
        num_samples=num_samples,
        track_coverage=track_coverage,
        failure_injector=injector,
        coalesce=coalesce,
        recorder=recorder,
    )


def _apply_heterogeneity(cluster: Cluster, topology: TopologySpec) -> List[str]:
    """Slow down the leading fraction of workers (older hardware series)."""
    if topology.slow_worker_fraction <= 0.0:
        return []
    workers = cluster.workers
    count = max(1, int(round(topology.slow_worker_fraction * len(workers))))
    slowed: List[str] = []
    for node in workers[:count]:
        slowdown = DeterministicSlowdown(factor=topology.slow_factor)
        existing = node.contention
        cluster.set_contention(
            node.name,
            slowdown if existing.is_null else CompositeContention([existing, slowdown]),
        )
        slowed.append(node.name)
    return slowed


def _failure_trace_process(job: PSTrainingJob, events: Sequence[FailureEvent]):
    """Simulation process that replays a failure trace against the job.

    An injection the job refuses (the node is already mid-restart when its
    event fires) cannot take effect; it is logged as a ``failure_skipped``
    metrics event so the divergence from the declared trace is visible in the
    run record rather than silent.
    """
    env = job.env
    for event in sorted(events, key=lambda item: item.time_s):
        delay = event.time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        if job.completed:
            return
        granted = job.inject_failure(event.node, event.error_code, detail="failure-trace")
        if not granted:
            job.metrics.log_event(env.now, "failure_skipped", event.node, event.code)


def _scale_event_process(job: PSTrainingJob, events: Sequence[ScaleEvent]):
    """Simulation process replaying a deterministic scale schedule.

    A scale-in without explicit node names retires the job's most recently
    joined active workers (LIFO).  Requests the job refuses (membership at
    its bounds, named node unknown or already draining) are logged as
    ``scale_skipped`` metrics events so the divergence from the declared
    schedule is visible in the run record rather than silent.
    """
    env = job.env
    for event in sorted(events, key=lambda item: item.time_s):
        delay = event.time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        if job.completed:
            return
        if event.action == "out":
            granted = job.request_scale_out(event.count, reason="elastic-schedule")
        else:
            targets = (list(event.nodes) if event.nodes
                       else job.default_scale_in_targets(event.count))
            granted = job.request_scale_in(targets, reason="elastic-schedule")
        if len(granted) < event.count:
            job.metrics.log_event(
                env.now, "scale_skipped", f"scale_{event.action}",
                f"granted {len(granted)}/{event.count}")


def _server_scale_event_process(job: PSTrainingJob, events: Sequence[ScaleEvent]):
    """Simulation process replaying a deterministic *server* scale schedule.

    The server-tier mirror of :func:`_scale_event_process`: a scale-in
    without explicit node names retires the most recently joined active
    servers (LIFO), and refused requests are logged as ``scale_skipped``.
    """
    env = job.env
    for event in sorted(events, key=lambda item: item.time_s):
        delay = event.time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        if job.completed:
            return
        if event.action == "out":
            granted = job.request_server_scale_out(event.count,
                                                   reason="elastic-schedule")
        else:
            targets = (list(event.nodes) if event.nodes
                       else job.default_server_scale_in_targets(event.count))
            granted = job.request_server_scale_in(targets,
                                                  reason="elastic-schedule")
        if len(granted) < event.count:
            job.metrics.log_event(
                env.now, "scale_skipped", f"server_scale_{event.action}",
                f"granted {len(granted)}/{event.count}")


def _arm_elastic(job: PSTrainingJob, spec: ScenarioSpec) -> None:
    """Wire a spec's elastic behaviour onto a built job."""
    elastic: ElasticSpec = spec.elastic
    servers = elastic.servers
    job.configure_elastic(min_workers=elastic.min_workers,
                          max_workers=elastic.max_workers)
    job.configure_elastic_servers(min_servers=servers.min_servers,
                                  max_servers=servers.max_servers)
    if servers.replicas or servers.hot_shards:
        job.configure_server_replication(
            replicas=servers.replicas,
            hot_shards=servers.hot_shards,
            staleness_catchup_s=servers.staleness_catchup_s)
    if elastic.policy is not None or servers.policy is not None:
        policy = (make_policy(elastic.policy, **dict(elastic.policy_params))
                  if elastic.policy is not None else None)
        server_policy = (
            make_server_policy(servers.policy, **dict(servers.policy_params))
            if servers.policy is not None else None)
        antdt = job.antdt_config
        autoscaler = Autoscaler(
            env=job.env,
            monitor=job.monitor,
            policy=policy,
            server_policy=server_policy,
            executor=job,
            config=AutoscalerConfig(
                interval_s=elastic.interval_s,
                cooldown_s=elastic.cooldown_s,
                min_workers=elastic.min_workers,
                max_workers=elastic.max_workers,
                min_servers=servers.min_servers,
                max_servers=servers.max_servers,
                short_window_s=antdt.transient_window_s,
                long_window_s=antdt.persistent_window_s,
                slowness_ratio=antdt.slowness_ratio,
            ),
            busy_provider=job.scheduler.is_busy,
            pending_time_provider=job.scheduler.pending_time,
            recorder=job.recorder,
        )
        job.attach_autoscaler(autoscaler)
    if elastic.events:
        job.env.process(_scale_event_process(job, elastic.events))
    if servers.events:
        job.env.process(_server_scale_event_process(job, servers.events))


def build_scenario_job(spec: ScenarioSpec, **overrides: object
                       ) -> Tuple[PSTrainingJob, FailureInjector]:
    """Assemble the runnable job (with armed failure trace) for a scenario.

    Returns the job plus the failure injector that will record every relaunch,
    so callers that need job internals (allocator state, agent overheads) can
    still fingerprint the run afterwards.  Raises ``ValueError`` when the
    failure trace names a node that does not exist in the resolved topology —
    otherwise a typo'd spec would produce a plausible golden trace for a
    scenario that never ran.
    """
    injector = overrides.pop("failure_injector", None) or FailureInjector(
        np.random.default_rng(spec.seed))
    experiment = _build_experiment(spec, failure_injector=injector, **overrides)
    job = experiment.build_job()
    unknown = sorted({event.node for event in spec.failures.events}
                     - {node.name for node in job.cluster.nodes})
    if unknown and not spec.elastic:
        # With elastic scaling the membership is dynamic — a trace may
        # legitimately target a node that joins later (a miss is logged as
        # ``failure_skipped`` at fire time instead).
        raise ValueError(
            f"scenario {spec.name!r}: failure trace names nodes not in the "
            f"resolved topology: {unknown}")
    _apply_heterogeneity(job.cluster, spec.topology)
    if spec.failures:
        job.env.process(_failure_trace_process(job, spec.failures.events))
    if spec.elastic:
        _arm_elastic(job, spec)
    if spec.serving:
        # Lazy import: the serving runtime pulls in the psarch layer, and
        # importing it at module top would cycle through the scenario
        # package's own __init__.
        from ..serving.driver import ServingTier
        job.attach_serving(ServingTier(job, spec.serving, seed=spec.seed,
                                       recorder=job.recorder))
    return job, injector


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario run.

    ``run`` carries the live simulation objects and is ``None`` when the
    result was restored from the orchestrator's content-addressed store (or
    crossed a process boundary) instead of being simulated here — the
    fingerprint is the durable, complete behavioural record either way, and
    every derived property reads from it first.
    """

    spec: ScenarioSpec
    run: Optional[PSRunResult]
    fingerprint: Dict[str, object]

    @property
    def name(self) -> str:
        """The scenario's name."""
        return self.spec.name

    @property
    def jct(self) -> float:
        """Job completion time in seconds."""
        if self.run is not None:
            return self.run.jct
        return float(self.fingerprint.get("jct_s", 0.0))

    @property
    def completed(self) -> bool:
        """Whether the scenario ran to completion."""
        if self.run is not None:
            return self.run.completed
        return bool(self.fingerprint.get("completed", False))

    @property
    def restarts_total(self) -> int:
        """Total node restarts over the run."""
        return sum(self.fingerprint.get("restarts", {}).values())

    def golden_trace(self) -> str:
        """Canonical byte form of the fingerprint (golden-trace contents)."""
        return canonical_json(self.fingerprint)

    def summary_row(self) -> List[object]:
        """One table row for :func:`repro.experiments.reporting.format_table`."""
        return [
            self.spec.name,
            self.spec.method,
            f"{self.jct:.1f}",
            self.fingerprint.get("samples_confirmed", 0),
            self.restarts_total,
            len(self.fingerprint.get("failures", [])),
        ]


def run_scenario(spec: ScenarioSpec, **overrides: object) -> ScenarioResult:
    """Run one scenario to completion and fingerprint its behaviour."""
    job, injector = build_scenario_job(spec, **overrides)
    result = job.run()
    return ScenarioResult(spec=spec, run=result,
                          fingerprint=fingerprint(spec, result, injector))


class ScenarioMatrix:
    """A grid of scenarios swept through the orchestrator.

    The default grid is every registered scenario; ``tags`` restricts the
    sweep (a scenario qualifies when it carries *any* of the given tags) and
    ``exclude_tags`` then drops scenarios carrying any of *those* tags — e.g.
    ``ScenarioMatrix(tags=("non-dedicated",), exclude_tags=("slow",))`` is
    the fast non-dedicated grid.

    :meth:`run` delegates to :class:`repro.orchestrator.SweepRunner`, so every
    matrix sweep gets process-pool parallelism (``REPRO_JOBS``) and
    content-addressed result caching for free while keeping the serial
    deterministic ordering of its results.
    """

    def __init__(self, specs: Optional[Iterable[ScenarioSpec]] = None,
                 tags: Optional[Sequence[str]] = None,
                 exclude_tags: Optional[Sequence[str]] = None) -> None:
        if specs is None:
            from .registry import all_scenarios

            specs = all_scenarios()
        selected = list(specs)
        if tags is not None:
            wanted = set(tags)
            selected = [spec for spec in selected if wanted & set(spec.tags)]
        if exclude_tags is not None:
            unwanted = set(exclude_tags)
            selected = [spec for spec in selected if not (unwanted & set(spec.tags))]
        names = [spec.name for spec in selected]
        if len(set(names)) != len(names):
            raise ValueError("scenario names in a matrix must be unique")
        self.specs: List[ScenarioSpec] = selected
        self._results: Optional[List[ScenarioResult]] = None
        self._run_params: Optional[Tuple[object, object]] = None
        #: The orchestrator report behind the last :meth:`run` (cache traffic,
        #: wall time, speedup); None until the matrix has run.  Populated even
        #: when the sweep raises, so failures stay inspectable.
        self.last_report = None

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def run(self, jobs: Optional[int] = None, store: object = _UNSET
            ) -> List[ScenarioResult]:
        """Sweep the matrix through the orchestrator (deterministic order).

        ``jobs`` defaults to the ``REPRO_JOBS`` environment variable (else
        serial); ``store`` accepts an explicit
        :class:`~repro.orchestrator.ResultStore` or ``None`` to disable
        caching for this sweep.  Scenario runs are deterministic, so the
        results are computed once and memoised — :meth:`fingerprints` and
        :meth:`summary_table` share them instead of re-simulating the grid,
        and calling again with *different* ``jobs``/``store`` arguments
        re-sweeps rather than silently returning the memoised results.
        A scenario that fails raises :class:`repro.orchestrator.SweepError`
        naming every failed spec (:attr:`last_report` still carries the full
        report, including the outcomes that succeeded).
        """
        # The store object itself is part of the memo key (held alive here, so
        # identity comparison is sound — unlike id(), which CPython recycles).
        params = (jobs, store)
        if self._results is None or self._run_params != params:
            from ..orchestrator import AUTO_STORE, SweepRunner

            # Drop any stale memo *before* sweeping: if this sweep fails, a
            # retry must re-sweep rather than hand back results memoised
            # under different parameters.
            self._results = None
            self._run_params = None
            runner = SweepRunner(
                jobs=jobs, store=AUTO_STORE if store is _UNSET else store)
            report = runner.run(self.specs)
            self.last_report = report
            report.raise_on_error()
            self._results = [outcome.to_scenario_result()
                             for outcome in report.outcomes]
            self._run_params = params
        return self._results

    def _memoised_results(self) -> List[ScenarioResult]:
        """Whatever :meth:`run` already computed, else a default sweep —
        derived views must never trigger a re-sweep just because the last
        explicit :meth:`run` used non-default parameters."""
        if self._results is not None:
            return self._results
        return self.run()

    def fingerprints(self) -> Dict[str, Dict[str, object]]:
        """Scenario-name -> fingerprint for the whole grid."""
        return {result.name: result.fingerprint
                for result in self._memoised_results()}

    def summary_table(self) -> str:
        """The grid's outcomes as a fixed-width text table."""
        from ..experiments.reporting import format_table

        headers = ["scenario", "method", "JCT (s)", "samples", "restarts", "failures"]
        return format_table(headers, [result.summary_row()
                                      for result in self._memoised_results()])

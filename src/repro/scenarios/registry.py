"""Named registry of built-in (and user-defined) scenarios.

Every operating condition the evaluation cares about is registered here once,
declaratively, instead of being hand-wired inside individual experiment
modules.  The built-in catalogue spans the paper's full matrix: dedicated and
non-dedicated clusters, transient / persistent / server-side / mixed-trace
stragglers, scheduler congestion, eviction storms, checkpoint-free failover,
heterogeneous hardware, and a 120-worker scale point.  Each registered
scenario is pinned to a golden trace under ``tests/golden/traces/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..elastic.spec import ElasticSpec, ScaleEvent, ServerElasticSpec
from ..serving.spec import SERVING_PRESETS, ServingSpec, TenantSpec
from ..experiments.stragglers import (
    NO_STRAGGLERS,
    StragglerScenario,
    server_scenario,
    trace_scenario,
    worker_scenario,
)
from ..sim.failures import ErrorCode
from .spec import FailureEvent, FailureTraceSpec, ScenarioSpec, TopologySpec

__all__ = ["SCENARIOS", "register_scenario", "get_scenario", "all_scenarios",
           "scenario_names"]

SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Register a scenario under its name; returns the spec for chaining."""
    if not overwrite and spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}") from None


def all_scenarios(tags: Optional[Sequence[str]] = None) -> List[ScenarioSpec]:
    """Every registered scenario (optionally: carrying any of ``tags``), by name."""
    specs = [SCENARIOS[name] for name in sorted(SCENARIOS)]
    if tags is None:
        return specs
    wanted = set(tags)
    return [spec for spec in specs if wanted & set(spec.tags)]


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in catalogue.  Seeds are fixed per scenario so the golden traces are
# stable; every spec must stay cheap enough for the tier-1 golden suite
# (the whole catalogue runs in a few seconds).
# ---------------------------------------------------------------------------

# -- dedicated clusters (Cluster-A analogue) --------------------------------
register_scenario(ScenarioSpec(
    name="dedicated-baseline",
    method="bsp",
    seed=1,
    description="Native BSP on a dedicated leader cluster: the clean reference run.",
    tags=("dedicated", "clean", "bsp"),
))

register_scenario(ScenarioSpec(
    name="dedicated-antdt-nd",
    method="antdt-nd",
    seed=1,
    description="AntDT-ND on a dedicated cluster: mitigation must not hurt a clean run.",
    tags=("dedicated", "clean"),
))

# -- non-dedicated clusters (Cluster-C analogue): straggler patterns --------
register_scenario(ScenarioSpec(
    name="nd-transient-mild",
    method="antdt-nd",
    seed=2,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.3, include_persistent=False),
    description="Mild transient bursts on ~30% of the workers (no persistent straggler).",
    tags=("non-dedicated", "transient"),
))

register_scenario(ScenarioSpec(
    name="nd-transient-heavy-bsp",
    method="bsp",
    seed=2,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.8, include_persistent=False),
    description="Heavy transient bursts under native BSP: the un-mitigated baseline.",
    tags=("non-dedicated", "transient", "bsp"),
))

register_scenario(ScenarioSpec(
    name="nd-transient-heavy-antdt",
    method="antdt-nd",
    seed=2,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.8, include_persistent=False),
    description="Heavy transient bursts under AntDT-ND (ADJUST_BS rebalancing).",
    tags=("non-dedicated", "transient"),
))

register_scenario(ScenarioSpec(
    name="nd-persistent-worker",
    method="antdt-nd",
    seed=3,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.8),
    description="Transient bursts plus one severe persistent worker (KILL_RESTART path).",
    tags=("non-dedicated", "persistent"),
))

register_scenario(ScenarioSpec(
    name="nd-persistent-only",
    method="antdt-nd",
    seed=3,
    topology=TopologySpec(dedicated=False),
    stragglers=StragglerScenario(
        name="persistent-only",
        side="worker",
        intensity=1.0,
        persistent_delay_s=3.0,
        transient_fraction=0.0,
    ),
    description="A single severe persistent straggler and nothing else.",
    tags=("non-dedicated", "persistent"),
))

register_scenario(ScenarioSpec(
    name="nd-server-straggler",
    method="antdt-nd",
    seed=4,
    topology=TopologySpec(dedicated=False),
    stragglers=server_scenario(0.8),
    description="One contended parameter server throttling the whole job.",
    tags=("non-dedicated", "server"),
))

register_scenario(ScenarioSpec(
    name="nd-mixed-trace",
    method="bsp",
    seed=5,
    topology=TopologySpec(dedicated=False),
    stragglers=trace_scenario(),
    description="The mixed Fig. 1 pattern: transient, persistent and deterministic "
                "workers, a slow server, background noise everywhere.",
    tags=("non-dedicated", "trace", "bsp"),
))

# -- ASP family -------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="asp-uneven-consumption",
    method="asp-dds",
    seed=6,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.8),
    description="ASP with the Stateful DDS: stragglers consume fewer samples (Fig. 3).",
    tags=("non-dedicated", "asp"),
))

register_scenario(ScenarioSpec(
    name="asp-antdt",
    method="antdt-nd-asp",
    seed=6,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.8),
    description="AntDT-ND in ASP mode (KILL_RESTART only, on top of the DDS).",
    tags=("non-dedicated", "asp"),
))

# -- scheduler congestion ---------------------------------------------------
register_scenario(ScenarioSpec(
    name="busy-cluster-gate",
    method="antdt-nd",
    seed=7,
    topology=TopologySpec(dedicated=False, cluster_busy=True),
    stragglers=worker_scenario(0.8),
    description="Peak-hour scheduling queue: the pending-time gate must veto "
                "KILL_RESTART and fall back to ADJUST_BS.",
    tags=("non-dedicated", "busy"),
))

# -- failure traces ---------------------------------------------------------
register_scenario(ScenarioSpec(
    name="eviction-storm",
    method="antdt-nd",
    seed=8,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.5, include_persistent=False),
    failures=FailureTraceSpec(
        events=FailureTraceSpec.storm(
            ("worker-1", "worker-2", "worker-3"), start_s=30.0, interval_s=15.0,
            code=ErrorCode.JOB_EVICTION,
        ).events + (
            FailureEvent(time_s=90.0, node="worker-0",
                         code=ErrorCode.MACHINE_FAILURE.value),
        ),
    ),
    description="The cluster scheduler reclaims capacity: three evictions in a row "
                "plus a machine fault, all mid-epoch; the DDS must requeue every "
                "in-flight shard.",
    tags=("non-dedicated", "failures", "eviction"),
))

register_scenario(ScenarioSpec(
    name="checkpoint-failover",
    method="bsp",
    seed=9,
    failures=FailureTraceSpec(events=(
        FailureEvent(time_s=60.0, node="worker-2",
                     code=ErrorCode.MACHINE_FAILURE.value),
    )),
    description="A single machine fault mid-epoch on an otherwise clean run: the "
                "DDS-based failover recomputes only the crashed worker's shard "
                "(Fig. 17's protocol comparison).",
    tags=("dedicated", "failures", "checkpoint"),
))

register_scenario(ScenarioSpec(
    name="server-eviction",
    method="antdt-nd",
    seed=10,
    failures=FailureTraceSpec(events=(
        FailureEvent(time_s=50.0, node="server-1",
                     code=ErrorCode.JOB_EVICTION.value),
    )),
    description="A parameter server is evicted mid-run; its queue must drain to "
                "the relaunched pod without losing a push.",
    tags=("dedicated", "failures", "server"),
))

# -- heterogeneous hardware -------------------------------------------------
register_scenario(ScenarioSpec(
    name="hetero-static-partition",
    method="asp",
    seed=11,
    topology=TopologySpec(slow_worker_fraction=1.0 / 3.0, slow_factor=2.5),
    stragglers=NO_STRAGGLERS,
    description="A third of the workers on an older machine series under a static "
                "even partition: deterministic stragglers dominate the tail.",
    tags=("hetero", "asp"),
))

# -- elastic membership -----------------------------------------------------
register_scenario(ScenarioSpec(
    name="elastic-scale-out",
    method="bsp",
    seed=13,
    elastic=ElasticSpec(events=(
        ScaleEvent(time_s=30.0, action="out", count=2),
    )),
    description="Two extra workers requested mid-epoch on an idle dedicated "
                "cluster: they ride the pending queue, join the barrier, and "
                "the DDS feeds them without losing or duplicating a sample.",
    tags=("dedicated", "elastic", "bsp"),
))

register_scenario(ScenarioSpec(
    name="elastic-scale-out-busy",
    method="antdt-nd",
    seed=14,
    topology=TopologySpec(dedicated=False, cluster_busy=True),
    stragglers=worker_scenario(0.5, include_persistent=False),
    elastic=ElasticSpec(events=(
        ScaleEvent(time_s=30.0, action="out", count=2),
    )),
    description="Scale-out requested at peak hour: the scheduler's pending "
                "time exceeds the job's remaining runtime, so the capacity "
                "never arrives (the busy-cluster gate, elastically).",
    tags=("non-dedicated", "elastic", "busy"),
))

register_scenario(ScenarioSpec(
    name="elastic-scale-in-straggler",
    method="bsp",
    seed=15,
    topology=TopologySpec(dedicated=False),
    stragglers=StragglerScenario(
        name="persistent-only",
        side="worker",
        intensity=1.0,
        persistent_delay_s=3.0,
        transient_fraction=0.0,
    ),
    elastic=ElasticSpec(policy="straggler-pressure", interval_s=25.0,
                        cooldown_s=50.0, min_workers=4),
    description="The straggler-pressure autoscaler retires a persistent "
                "straggler instead of dragging it: the DDS requeues its "
                "in-flight shard and the healthy fleet absorbs the data.",
    tags=("non-dedicated", "elastic", "persistent"),
))

register_scenario(ScenarioSpec(
    name="elastic-churn-storm",
    method="antdt-nd",
    seed=16,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.5, include_persistent=False),
    elastic=ElasticSpec(events=(
        ScaleEvent(time_s=25.0, action="out", count=2),
        ScaleEvent(time_s=45.0, action="out", count=1),
        ScaleEvent(time_s=70.0, action="in", count=2),
        ScaleEvent(time_s=95.0, action="out", count=1),
    )),
    description="Repeated membership churn mid-epoch — joins and graceful "
                "retirements interleaved with transient stragglers — while "
                "shard accounting must stay balanced throughout.",
    tags=("non-dedicated", "elastic", "churn"),
))

register_scenario(ScenarioSpec(
    name="elastic-checkpoint-failover",
    method="bsp",
    seed=17,
    failures=FailureTraceSpec(events=(
        FailureEvent(time_s=60.0, node="worker-2",
                     code=ErrorCode.MACHINE_FAILURE.value),
    )),
    elastic=ElasticSpec(events=(
        ScaleEvent(time_s=25.0, action="out", count=1),
    )),
    description="Elastic join plus a machine fault on an original worker: "
                "the failover requeue and the elastic re-sharding compose "
                "without losing a sample.",
    tags=("dedicated", "elastic", "failures", "checkpoint"),
))

register_scenario(ScenarioSpec(
    name="elastic-scheduled-capacity",
    method="asp-dds",
    seed=18,
    elastic=ElasticSpec(policy="scheduled-capacity",
                        policy_params=(("schedule", [[0.0, 6], [30.0, 9],
                                                     [70.0, 6]]),),
                        interval_s=15.0, max_workers=10),
    description="A deterministic capacity plan (grow to 9 workers at t=30, "
                "shrink back at t=70) driven by the scheduled-capacity "
                "autoscaler under ASP training.",
    tags=("dedicated", "elastic", "asp", "schedule"),
))

register_scenario(ScenarioSpec(
    name="elastic-autoscale-utilization",
    method="asp-dds",
    seed=19,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.3, include_persistent=False),
    elastic=ElasticSpec(policy="utilization",
                        policy_params=(("scale_out_horizon_s", 60.0),
                                       ("scale_in_horizon_s", 10.0)),
                        interval_s=20.0, max_workers=9),
    description="The utilization autoscaler grows the fleet while the "
                "estimated time-to-finish exceeds its horizon and retires "
                "the newest workers as the backlog drains.",
    tags=("non-dedicated", "elastic", "asp"),
))

# -- elastic server membership ----------------------------------------------
register_scenario(ScenarioSpec(
    name="elastic-server-scale-out",
    method="antdt-nd",
    seed=20,
    topology=TopologySpec(dedicated=False),
    stragglers=server_scenario(0.8),
    elastic=ElasticSpec(servers=ServerElasticSpec(events=(
        ScaleEvent(time_s=30.0, action="out", count=1),
    ))),
    description="One extra parameter server requested while a contended "
                "server throttles the job: the newcomer receives its slice "
                "of the rendezvous shard map and workers spread subsequent "
                "pushes over the grown tier.",
    tags=("non-dedicated", "elastic", "elastic-server", "server"),
))

register_scenario(ScenarioSpec(
    name="elastic-server-retire-replace",
    method="antdt-nd",
    seed=21,
    topology=TopologySpec(dedicated=False),
    stragglers=server_scenario(0.8),
    elastic=ElasticSpec(
        interval_s=25.0, cooldown_s=50.0,
        servers=ServerElasticSpec(policy="contended-server",
                                  policy_params=(("replace", True),),
                                  max_servers=5)),
    description="The contended-server autoscaler retires the persistently "
                "contended server — the one fault class where only "
                "KILL_RESTART used to help — and requests a healthy "
                "replacement while the pending-time forecast allows it.",
    tags=("non-dedicated", "elastic", "elastic-server", "server"),
))

register_scenario(ScenarioSpec(
    name="elastic-server-churn",
    method="bsp",
    seed=22,
    topology=TopologySpec(dedicated=False),
    stragglers=worker_scenario(0.5, include_persistent=False),
    elastic=ElasticSpec(
        events=(ScaleEvent(time_s=20.0, action="out", count=2),
                ScaleEvent(time_s=70.0, action="in", count=2)),
        servers=ServerElasticSpec(events=(
            ScaleEvent(time_s=35.0, action="out", count=1),
            ScaleEvent(time_s=90.0, action="in", count=1),
        ))),
    description="Worker churn and server churn combined mid-epoch: the DDS "
                "requeue, the barrier membership and the parameter shard map "
                "all re-partition while shard accounting stays balanced.",
    tags=("non-dedicated", "elastic", "elastic-server", "churn"),
))

register_scenario(ScenarioSpec(
    name="elastic-server-busy-gate",
    method="antdt-nd",
    seed=23,
    topology=TopologySpec(dedicated=False, cluster_busy=True),
    stragglers=server_scenario(0.8),
    elastic=ElasticSpec(servers=ServerElasticSpec(events=(
        ScaleEvent(time_s=30.0, action="out", count=1),
    ))),
    description="Server capacity requested at peak hour: the scheduler's "
                "pending time exceeds the job's remaining runtime, so the "
                "serving tier never actually grows (the busy-cluster gate "
                "applied to the PS tier).",
    tags=("non-dedicated", "elastic", "elastic-server", "busy"),
))

register_scenario(ScenarioSpec(
    name="elastic-server-queue-autoscale",
    method="asp-dds",
    seed=24,
    topology=TopologySpec(dedicated=False),
    stragglers=server_scenario(0.8),
    elastic=ElasticSpec(
        interval_s=20.0, cooldown_s=40.0,
        servers=ServerElasticSpec(policy="server-queue-depth",
                                  policy_params=(("scale_out_depth", 2.0),
                                                 ("scale_in_depth", 0.25)),
                                  max_servers=5)),
    description="The server-queue-depth autoscaler grows the serving tier "
                "while push queues back up behind a contended server and "
                "shrinks it once the backlog drains, under ASP training.",
    tags=("non-dedicated", "elastic", "elastic-server", "asp"),
))

# -- warm-standby replication and hot-key weighting -------------------------
#: The shards server-2 owns under the default 3-server rendezvous split (a
#: pure function of the member/shard names), weighted as the hot keys: the
#: contended server of ``server_scenario`` is ``servers[-1]``, so the skew
#: lands exactly on the server whose modest raw backlog the unweighted
#: count-based policy under-reads.
HOT_SHARDS = tuple(
    (shard, 6.0) for shard in (1, 6, 7, 10, 12, 13, 14, 20, 30, 36, 39,
                               42, 45, 46, 51, 55, 59, 60))
register_scenario(ScenarioSpec(
    name="replicated-server-kill-promotion",
    method="antdt-nd",
    seed=25,
    failures=FailureTraceSpec(events=(
        FailureEvent(time_s=50.0, node="server-1",
                     code=ErrorCode.JOB_EVICTION.value),
    )),
    elastic=ElasticSpec(servers=ServerElasticSpec(replicas=1)),
    description="The server-eviction scenario with one warm standby per "
                "shard: the evicted primary's shards are *promoted* to their "
                "standbys (cheap coordination cost, no queue stall behind the "
                "recovering pod) and the pod rejoins the rotation as a "
                "standby after its relaunch.",
    tags=("dedicated", "failures", "server", "replication"),
))

register_scenario(ScenarioSpec(
    name="hot-key-queue-autoscale",
    method="asp-dds",
    seed=26,
    topology=TopologySpec(dedicated=False),
    stragglers=server_scenario(0.8),
    elastic=ElasticSpec(
        interval_s=20.0, cooldown_s=40.0,
        servers=ServerElasticSpec(policy="server-queue-depth",
                                  policy_params=(("scale_out_depth", 4.0),
                                                 ("scale_in_depth", 0.25)),
                                  max_servers=5,
                                  hot_shards=HOT_SHARDS)),
    description="Hot-key skew concentrated on the contended server's shards: "
                "the weighted server-queue-depth policy reads its modest raw "
                "backlog as the dominant share of pending work and scales "
                "the tier out where the unweighted count-based policy "
                "(scale_out_depth above every raw depth) never triggers.",
    tags=("non-dedicated", "elastic", "elastic-server", "asp", "replication"),
))

# -- scale ------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="scale-120w",
    method="antdt-nd",
    scale="auto",
    seed=12,
    topology=TopologySpec(num_workers=120, dedicated=False),
    stragglers=worker_scenario(0.8),
    description="The 120-worker scale point of the perf sweep under heavy worker "
                "stragglers.",
    tags=("non-dedicated", "scale", "slow"),
))

# -- training + serving colocation ------------------------------------------
# Open-loop request traffic against the PS tier while the job trains.  The
# serving window, rates and admission depths are sized for the small scale's
# 3-server tier (~100 req/s per server before training contention), so every
# scenario stays cheap enough for the tier-1 golden suite.
register_scenario(ScenarioSpec(
    name="serving-steady-diurnal",
    method="antdt-nd",
    seed=27,
    serving=SERVING_PRESETS["steady"],
    description="Two tenants (a diurnal web class and a token-bucketed batch "
                "class) serve reads against the training job's PS tier: the "
                "baseline colocation point, with p50/p99 latency, goodput "
                "and shed counts pinned in the fingerprint.",
    tags=("dedicated", "serving", "colocation"),
))

register_scenario(ScenarioSpec(
    name="serving-overload-shed",
    method="antdt-nd",
    seed=28,
    serving=SERVING_PRESETS["bursty"],
    description="A spiky tenant offers ~3x the tier's effective capacity in "
                "bursts: the token bucket throttles it at the edge and the "
                "bounded admission queues shed the rest as overload — "
                "graceful degradation with bounded latency, never an "
                "unbounded queue (the serve-smoke scenario).",
    tags=("dedicated", "serving", "colocation", "overload"),
))

register_scenario(ScenarioSpec(
    name="serving-slo-autoscale",
    method="antdt-nd",
    seed=29,
    elastic=ElasticSpec(
        interval_s=10.0, cooldown_s=20.0,
        servers=ServerElasticSpec(policy="serving-slo",
                                  policy_params=(("target_p99_s", 0.3),
                                                 ("max_shed_rate", 0.02),
                                                 ("scale_in_fraction", 0.2)),
                                  max_servers=6)),
    serving=SERVING_PRESETS["flash"],
    description="A flash crowd ramps to 8x the baseline rate mid-window: the "
                "serving-slo policy watches the windowed shed rate and p99 "
                "and grows the server tier through the spike — the elastic "
                "PS tier scaled by the thing it exists for, with every "
                "verdict in the autoscaler decision log.",
    tags=("dedicated", "serving", "colocation", "elastic", "elastic-server"),
))

register_scenario(ScenarioSpec(
    name="serving-hot-key-fanout",
    method="antdt-nd",
    seed=30,
    elastic=ElasticSpec(servers=ServerElasticSpec(replicas=1,
                                                  hot_shards=HOT_SHARDS)),
    serving=ServingSpec(
        tenants=(TenantSpec(name="web", rate_rps=90.0, shape="diurnal"),
                 TenantSpec(name="mobile", rate_rps=50.0, shape="uniform",
                            rate_limit_rps=60.0)),
        start_s=5.0, duration_s=40.0, zipf_s=1.2, queue_capacity=24),
    description="Zipf key popularity concentrated on the weighted hot shards, "
                "with one warm standby per shard: reads fan out to the "
                "least-loaded live chain member, so the replicas built for "
                "failover finally carry traffic and level the hot server's "
                "load.",
    tags=("dedicated", "serving", "colocation", "replication"),
))

register_scenario(ScenarioSpec(
    name="serving-promotion-burst",
    method="antdt-nd",
    seed=31,
    failures=FailureTraceSpec(events=(
        FailureEvent(time_s=26.0, node="server-1",
                     code=ErrorCode.JOB_EVICTION.value),
    )),
    elastic=ElasticSpec(servers=ServerElasticSpec(
        replicas=1, staleness_catchup_s=0.75)),
    serving=ServingSpec(
        tenants=(TenantSpec(name="web", rate_rps=70.0, shape="uniform"),
                 TenantSpec(name="spiky", rate_rps=150.0, shape="bursty",
                            rate_limit_rps=110.0, burst_s=0.5)),
        start_s=5.0, duration_s=40.0, queue_capacity=12),
    description="A primary is evicted in the middle of a request burst: warm "
                "standbys are promoted (paying the staleness catch-up on top "
                "of the coordination cost), in-flight serving requests are "
                "re-delivered to the heirs, and the exactly-once audit still "
                "balances.",
    tags=("dedicated", "serving", "colocation", "replication", "failures"),
))

"""AntDT reproduction: a self-adaptive distributed training framework.

This package reproduces "AntDT: A Self-Adaptive Distributed Training Framework
for Leader and Straggler Nodes" (ICDE 2024) in pure Python:

* :mod:`repro.core` — the AntDT framework itself (Stateful Dynamic Data
  Sharding, Monitor, Controller, Agent, action set, AntDT-ND / AntDT-DD).
* :mod:`repro.sim` — a discrete-event cluster simulator standing in for the
  Ant Group production clusters (devices, contention, scheduler, failures).
* :mod:`repro.psarch` / :mod:`repro.allreduce` — the Parameter Server and
  AllReduce training architectures built on the simulator.
* :mod:`repro.ml` — a NumPy mini deep-learning substrate (models, optimizers,
  synthetic datasets) for the statistical/data-integrity experiments.
* :mod:`repro.elastic` — elastic scaling: runtime worker add/remove,
  autoscaler policies, and shard-accounting data-integrity audits.
* :mod:`repro.baselines` — BSP, ASP, ASP-DDS, LB-BSP, Backup Workers, DDP.
* :mod:`repro.experiments` — per-figure/table experiment generators.
* :mod:`repro.scenarios` — declarative scenario specs, registry, and
  golden-trace fingerprints.
* :mod:`repro.orchestrator` — parallel sweep execution with a
  content-addressed result store, exposed as the ``python -m repro`` CLI.
* :mod:`repro.perf` — engine performance tracking (``BENCH_engine.json``).

The scenario/orchestrator/perf layers build on the experiment stack and are
imported on demand rather than eagerly here.
"""

from . import allreduce, baselines, checkpoint, core, elastic, ml, psarch, sim

__version__ = "1.0.0"

__all__ = [
    "allreduce",
    "baselines",
    "checkpoint",
    "core",
    "elastic",
    "ml",
    "psarch",
    "sim",
    "__version__",
]

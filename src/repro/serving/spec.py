"""Declarative specification of an open-loop serving workload.

A :class:`ServingSpec` describes the request traffic a scenario drives
against the parameter-server tier *while training runs*: one or more
tenants, each with a deterministic seeded arrival shape (uniform Poisson,
diurnal, bursty, or a flash crowd), an offered rate, and an optional
token-bucket rate limit; plus the knobs shared across tenants — the serving
window, the read/write mix, the Zipf key-popularity exponent, and the
bounded per-server admission depth (queue-based load leveling: beyond it a
request is shed with a 429-style degraded response, never parked on an
unbounded queue).

Like every scenario ingredient the spec round-trips losslessly through
``to_dict`` / ``from_dict``, so serving scenarios can be named,
content-addressed by the result store, and pinned to golden traces.  The
module is deliberately dependency-light (no simulation imports): it is
pulled in by :mod:`repro.scenarios.spec` for serialization, while the
runtime lives in :mod:`repro.serving.driver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["TenantSpec", "ServingSpec", "NO_SERVING", "SERVING_PRESETS"]

#: Valid arrival-trace shapes (see :mod:`repro.serving.arrivals`).
ARRIVAL_SHAPES = ("uniform", "diurnal", "bursty", "flash-crowd")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class of the serving workload.

    Attributes
    ----------
    name:
        Tenant name; also the serving pseudo-worker suffix requests carry.
    rate_rps:
        Mean *offered* arrival rate over the serving window (open loop: the
        tenant keeps sending at this rate regardless of what comes back).
    shape:
        Arrival-trace shape: ``"uniform"`` (homogeneous Poisson),
        ``"diurnal"`` (sinusoidal day curve), ``"bursty"`` (on/off duty
        cycle at constant mean), or ``"flash-crowd"`` (one ramped spike on
        a quiet baseline).
    rate_limit_rps:
        Token-bucket throttle: sustained admission ceiling for this tenant
        (``None`` disables throttling).  Requests arriving with the bucket
        empty are shed as ``"throttled"`` before touching any server.
    burst_s:
        Bucket capacity in *seconds at the sustained rate*: the bucket
        holds ``rate_limit_rps * burst_s`` tokens, so a tenant may burst
        that many requests above its sustained ceiling.
    """

    name: str
    rate_rps: float
    shape: str = "uniform"
    rate_limit_rps: Optional[float] = None
    burst_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(f"unknown arrival shape {self.shape!r}; "
                             f"available: {ARRIVAL_SHAPES}")
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ValueError("rate_limit_rps must be positive (or None)")
        if self.burst_s <= 0:
            raise ValueError("burst_s must be positive")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "rate_rps": self.rate_rps,
            "shape": self.shape,
            "rate_limit_rps": self.rate_limit_rps,
            "burst_s": self.burst_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TenantSpec":
        """Rebuild a tenant from :meth:`to_dict` output (lossless)."""
        return cls(
            name=data["name"],
            rate_rps=data["rate_rps"],
            shape=data.get("shape", "uniform"),
            rate_limit_rps=data.get("rate_limit_rps"),
            burst_s=data.get("burst_s", 1.0),
        )


@dataclass(frozen=True)
class ServingSpec:
    """The serving workload of one scenario (falsy when no tenants).

    Attributes
    ----------
    tenants:
        The tenant classes sending traffic.  An empty tuple (the default,
        :data:`NO_SERVING`) disables the serving tier entirely.
    start_s / duration_s:
        The serving window in simulation time.  Arrivals stop at
        ``start_s + duration_s``; requests already admitted drain normally.
        A window outlasting the training run is cut at the run's end.
    read_fraction:
        Fraction of requests that are parameter *pulls* — reads may fan out
        to a shard's warm standbys, writes go to the primary only.
    request_bytes:
        Payload bytes per request (serving requests are far lighter than a
        training gradient push; the per-request device overhead dominates).
    zipf_s:
        Zipf exponent of the key-popularity distribution.  Keys are ranked
        hottest-first and mapped block-wise onto the shard universe sorted
        by declared shard weight, so popularity lands on the scenario's
        ``hot_shards``.
    num_keys:
        Size of the key universe the Zipf distribution draws from.
    queue_capacity:
        Bounded per-server admission depth: requests in flight to one
        server beyond this are shed as ``"overload"`` (load leveling with
        graceful degradation — the queue never grows without bound).
    window_s:
        Sliding window of the SLO snapshot fed to the ``serving-slo``
        autoscaler policy (p99 latency, shed rate, arrival rate).
    """

    tenants: Tuple[TenantSpec, ...] = ()
    start_s: float = 0.0
    duration_s: float = 60.0
    read_fraction: float = 0.95
    request_bytes: float = 2048.0
    zipf_s: float = 1.1
    num_keys: int = 4096
    queue_capacity: int = 16
    window_s: float = 20.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must lie in [0, 1]")
        if self.request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.num_keys < 1:
            raise ValueError("num_keys must be at least 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    def __bool__(self) -> bool:
        return bool(self.tenants)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`.

        The enclosing :class:`~repro.scenarios.spec.ScenarioSpec` omits a
        falsy serving section entirely, so every pre-serving spec keeps its
        canonical bytes; within a non-empty section all keys are explicit.
        """
        return {
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "read_fraction": self.read_fraction,
            "request_bytes": self.request_bytes,
            "zipf_s": self.zipf_s,
            "num_keys": self.num_keys,
            "queue_capacity": self.queue_capacity,
            "window_s": self.window_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServingSpec":
        """Rebuild a spec from :meth:`to_dict` output (lossless)."""
        return cls(
            tenants=tuple(TenantSpec.from_dict(tenant)
                          for tenant in data.get("tenants", ())),
            start_s=data.get("start_s", 0.0),
            duration_s=data.get("duration_s", 60.0),
            read_fraction=data.get("read_fraction", 0.95),
            request_bytes=data.get("request_bytes", 2048.0),
            zipf_s=data.get("zipf_s", 1.1),
            num_keys=data.get("num_keys", 4096),
            queue_capacity=data.get("queue_capacity", 16),
            window_s=data.get("window_s", 20.0),
        )


#: The inert default: no tenants, no serving tier (falsy).
NO_SERVING = ServingSpec()


#: Named serving presets for the orchestrator's ``--serving`` grid axis.
#: Rates are sized for the small scale's 3-server tier (~100 req/s per
#: server of pure serving capacity before training contention).
SERVING_PRESETS: Dict[str, ServingSpec] = {
    "off": NO_SERVING,
    "steady": ServingSpec(
        tenants=(
            TenantSpec(name="web", rate_rps=80.0, shape="diurnal"),
            TenantSpec(name="batch", rate_rps=30.0, shape="uniform",
                       rate_limit_rps=40.0, burst_s=2.0),
        ),
        start_s=5.0, duration_s=40.0,
    ),
    "bursty": ServingSpec(
        tenants=(
            TenantSpec(name="web", rate_rps=60.0, shape="uniform"),
            TenantSpec(name="spiky", rate_rps=220.0, shape="bursty",
                       rate_limit_rps=120.0, burst_s=0.5),
        ),
        start_s=5.0, duration_s=40.0, queue_capacity=12,
    ),
    "flash": ServingSpec(
        tenants=(
            TenantSpec(name="web", rate_rps=50.0, shape="flash-crowd"),
        ),
        start_s=5.0, duration_s=45.0,
    ),
}

"""SLO accounting for the serving tier.

The :class:`SLOTracker` keeps two views of the same request stream:

- **Cumulative per-tenant totals** (arrivals, completions, sheds by
  reason, latency samples) that become the run fingerprint's ``serving``
  section — nearest-rank p50/p99, shed rate, goodput, and a digest of the
  per-request latency series, all derived from simulation-time quantities
  that are identical in both engine coalescing modes.
- **A sliding window** (pruned lazily at snapshot time) that feeds the
  ``serving-slo`` autoscaler policy: recent arrival rate, shed rate, and
  windowed p99.  Snapshots are only taken at autoscaler decision rounds,
  which occur at fixed simulation times, so policy inputs are
  mode-invariant too.

Latency is measured arrival-to-acknowledgement: it includes time spent
queued behind training pushes, so colocation contention is visible in the
p99 — exactly the signal the SLO policy scales on.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Tuple

__all__ = ["SLOTracker"]

#: Shed reasons, in fingerprint order.
SHED_REASONS = ("overload", "throttled")


def _nearest_rank(sorted_values: List[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    rank = math.ceil(quantile * len(sorted_values))
    return sorted_values[min(len(sorted_values), max(1, rank)) - 1]


class _TenantStats:
    __slots__ = ("arrivals", "completed", "shed", "latencies", "ack_times")

    def __init__(self) -> None:
        self.arrivals = 0
        self.completed = 0
        self.shed = {reason: 0 for reason in SHED_REASONS}
        self.latencies: List[float] = []
        self.ack_times: List[float] = []


class SLOTracker:
    """Per-tenant serving counters plus a sliding SLO window."""

    def __init__(self, window_s: float):
        self.window_s = window_s
        self._tenants: Dict[str, _TenantStats] = {}
        self._win_arrivals: Deque[float] = deque()
        self._win_sheds: Deque[float] = deque()
        self._win_latencies: Deque[Tuple[float, float]] = deque()

    def _stats(self, tenant: str) -> _TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = _TenantStats()
        return stats

    # ------------------------------------------------------------------
    # Recording (called by the driver in simulation order).
    # ------------------------------------------------------------------

    def on_arrival(self, tenant: str, now_s: float) -> None:
        self._stats(tenant).arrivals += 1
        self._win_arrivals.append(now_s)

    def on_shed(self, tenant: str, now_s: float, reason: str) -> None:
        self._stats(tenant).shed[reason] += 1
        self._win_sheds.append(now_s)

    def on_completion(self, tenant: str, ack_s: float,
                      latency_s: float) -> None:
        stats = self._stats(tenant)
        stats.completed += 1
        stats.latencies.append(latency_s)
        stats.ack_times.append(ack_s)
        self._win_latencies.append((ack_s, latency_s))

    # ------------------------------------------------------------------
    # Policy snapshot (windowed) and fingerprint section (cumulative).
    # ------------------------------------------------------------------

    def _prune(self, now_s: float) -> None:
        horizon = now_s - self.window_s
        for window in (self._win_arrivals, self._win_sheds):
            while window and window[0] < horizon:
                window.popleft()
        while self._win_latencies and self._win_latencies[0][0] < horizon:
            self._win_latencies.popleft()

    def snapshot(self, now_s: float, inflight: int) -> Dict[str, float]:
        """Windowed SLO view for :class:`~repro.elastic.policies.ElasticContext`."""
        self._prune(now_s)
        span = min(self.window_s, now_s) or self.window_s
        arrivals = len(self._win_arrivals)
        sheds = len(self._win_sheds)
        data: Dict[str, float] = {
            "arrival_rps": arrivals / span,
            "shed_rate": (sheds / arrivals) if arrivals else 0.0,
            "inflight": float(inflight),
        }
        if self._win_latencies:
            latencies = sorted(lat for _, lat in self._win_latencies)
            data["p99_s"] = _nearest_rank(latencies, 0.99)
        return data

    def finalize(self, elapsed_s: float,
                 in_flight_at_end: int) -> Dict[str, object]:
        """Cumulative, JSON-safe summary for the run fingerprint."""
        # Lazy import: fingerprint pulls in the scenario layer, which
        # reaches back into serving via the matrix — a top-level import
        # here would be circular.
        from ..scenarios.fingerprint import series_digest

        total = _TenantStats()
        tenants: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._tenants):
            stats = self._tenants[name]
            tenants[name] = self._summarize(stats, elapsed_s)
            total.arrivals += stats.arrivals
            total.completed += stats.completed
            for reason in SHED_REASONS:
                total.shed[reason] += stats.shed[reason]
            total.latencies.extend(stats.latencies)
            total.ack_times.extend(stats.ack_times)
        summary = self._summarize(total, elapsed_s)
        summary["tenants"] = tenants
        summary["in_flight_at_end"] = in_flight_at_end
        if total.ack_times:
            order = sorted(range(len(total.ack_times)),
                           key=lambda i: (total.ack_times[i], total.latencies[i]))
            summary["latency_digest"] = series_digest(
                [total.ack_times[i] for i in order],
                [total.latencies[i] for i in order])
        return summary

    @staticmethod
    def _summarize(stats: _TenantStats, elapsed_s: float) -> Dict[str, object]:
        shed_total = sum(stats.shed.values())
        data: Dict[str, object] = {
            "arrivals": stats.arrivals,
            "completed": stats.completed,
            "shed": dict(stats.shed),
            "shed_rate": (shed_total / stats.arrivals) if stats.arrivals else 0.0,
            "goodput_rps": (stats.completed / elapsed_s) if elapsed_s > 0 else 0.0,
        }
        if stats.latencies:
            latencies = sorted(stats.latencies)
            data["p50_s"] = _nearest_rank(latencies, 0.50)
            data["p99_s"] = _nearest_rank(latencies, 0.99)
        return data

"""Deterministic open-loop arrival traces and key-popularity sampling.

Every tenant's request trace is generated up front from a seeded
:class:`numpy.random.Generator` by thinning a homogeneous Poisson process:
candidate arrivals are drawn at the shape's peak rate and accepted with
probability ``rate(t) / peak``, which yields an inhomogeneous Poisson
process with exactly the requested rate curve through a single code path.
Because the whole trace is an array computed before the simulation starts,
replays are bit-identical regardless of engine coalescing mode or sweep
process count.

Shapes (all with mean ``rate_rps`` over the window, except the flash
crowd, whose spike rides on a half-rate baseline):

- ``uniform``      — homogeneous Poisson at ``rate_rps``.
- ``diurnal``      — one sinusoidal "day" spanning the window, trough at
  the start, peak mid-window, amplitude 60% of the mean.
- ``bursty``       — a deterministic on/off duty cycle: 5 s at 3x the
  mean every 20 s, one third of the mean in between.
- ``flash-crowd``  — a Gaussian spike to 8x the mean centred at 40% of
  the window on a 0.5x baseline.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["arrival_times", "zipf_keys", "peak_rate"]

#: Bursty duty cycle: ``_BURST_ON_S`` seconds at ``_BURST_FACTOR`` x the
#: mean rate every ``_BURST_PERIOD_S`` seconds; the off-phase rate is set
#: so the cycle mean equals the tenant's ``rate_rps``.
_BURST_PERIOD_S = 20.0
_BURST_ON_S = 5.0
_BURST_FACTOR = 3.0
_BURST_OFF_FACTOR = (_BURST_PERIOD_S - _BURST_ON_S * _BURST_FACTOR) / (
    _BURST_PERIOD_S - _BURST_ON_S)

#: Diurnal curve amplitude as a fraction of the mean rate.
_DIURNAL_AMPLITUDE = 0.6

#: Flash crowd: spike peak (as a multiple of the mean rate) on a half-rate
#: baseline, centred at ``_FLASH_CENTER`` of the window with a Gaussian
#: width of ``_FLASH_WIDTH`` of the window.
_FLASH_BASELINE = 0.5
_FLASH_PEAK = 8.0
_FLASH_CENTER = 0.4
_FLASH_WIDTH = 1.0 / 12.0


def peak_rate(shape: str, rate_rps: float) -> float:
    """Upper bound of ``rate(t)`` used as the thinning envelope."""
    if shape == "uniform":
        return rate_rps
    if shape == "diurnal":
        return rate_rps * (1.0 + _DIURNAL_AMPLITUDE)
    if shape == "bursty":
        return rate_rps * _BURST_FACTOR
    if shape == "flash-crowd":
        return rate_rps * _FLASH_PEAK
    raise ValueError(f"unknown arrival shape {shape!r}")


def _rate_curve(shape: str, rate_rps: float, offsets: np.ndarray,
                duration_s: float) -> np.ndarray:
    """Instantaneous rate at each window offset (vectorised)."""
    if shape == "uniform":
        return np.full(offsets.shape, rate_rps)
    if shape == "diurnal":
        phase = 2.0 * math.pi * offsets / duration_s - 0.5 * math.pi
        return rate_rps * (1.0 + _DIURNAL_AMPLITUDE * np.sin(phase))
    if shape == "bursty":
        in_burst = np.mod(offsets, _BURST_PERIOD_S) < _BURST_ON_S
        return rate_rps * np.where(in_burst, _BURST_FACTOR,
                                   _BURST_OFF_FACTOR)
    if shape == "flash-crowd":
        center = _FLASH_CENTER * duration_s
        width = _FLASH_WIDTH * duration_s
        spike = np.exp(-((offsets - center) / width) ** 2)
        return rate_rps * (_FLASH_BASELINE +
                           (_FLASH_PEAK - _FLASH_BASELINE) * spike)
    raise ValueError(f"unknown arrival shape {shape!r}")


def arrival_times(rng: np.random.Generator, shape: str, rate_rps: float,
                  start_s: float, duration_s: float) -> np.ndarray:
    """Sorted absolute arrival times of one tenant over its window.

    Thins a homogeneous Poisson envelope at :func:`peak_rate` down to the
    shape's instantaneous rate curve.  Returns times in
    ``[start_s, start_s + duration_s)``.
    """
    peak = peak_rate(shape, rate_rps)
    expected = peak * duration_s
    offsets = np.empty(0)
    horizon = 0.0
    # Draw exponential gaps in chunks until the envelope covers the window.
    while horizon < duration_s:
        chunk = max(64, int(expected - horizon * peak) + 1)
        chunk += int(4.0 * math.sqrt(chunk))
        gaps = rng.exponential(1.0 / peak, size=chunk)
        offsets = np.concatenate([offsets, horizon + np.cumsum(gaps)])
        horizon = float(offsets[-1])
    offsets = offsets[offsets < duration_s]
    accept = rng.random(offsets.shape[0])
    kept = offsets[accept * peak < _rate_curve(shape, rate_rps, offsets,
                                               duration_s)]
    return start_s + kept


def zipf_keys(rng: np.random.Generator, count: int, num_keys: int,
              exponent: float) -> np.ndarray:
    """Sample ``count`` key ranks from a bounded Zipf distribution.

    Rank 0 is the hottest key.  Uses inverse-CDF sampling on the
    normalised ``(rank + 1) ** -exponent`` weights, so the same generator
    state always yields the same key sequence.
    """
    weights = np.arange(1, num_keys + 1, dtype=float) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(count), side="right")

"""Per-tenant token-bucket throttling.

The classic rate-limiting pattern: each tenant owns a bucket that refills
continuously at its sustained ceiling and caps at a configurable burst
allowance.  A request arriving to an empty bucket is shed as
``"throttled"`` before it reaches any server — throttling is an admission
decision at the edge, distinct from per-server ``"overload"`` shedding.

The bucket is deterministic: it refills lazily from elapsed simulation
time at each arrival, so its state is a pure function of the arrival
trace and never depends on engine scheduling order.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TokenBucket", "bucket_for"]


class TokenBucket:
    """Deterministic token bucket (``rate`` tokens/s, ``capacity`` cap)."""

    __slots__ = ("rate", "capacity", "_tokens", "_last_s")

    def __init__(self, rate: float, capacity: float, start_s: float = 0.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._last_s = start_s

    def try_acquire(self, now_s: float) -> bool:
        """Refill from elapsed time, then take one token if available."""
        if now_s > self._last_s:
            self._tokens = min(self.capacity,
                               self._tokens + (now_s - self._last_s) * self.rate)
            self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (as of the last refill)."""
        return self._tokens


def bucket_for(rate_limit_rps: Optional[float], burst_s: float,
               start_s: float) -> Optional[TokenBucket]:
    """Build a tenant's bucket, or ``None`` when the tenant is unthrottled."""
    if rate_limit_rps is None:
        return None
    return TokenBucket(rate=rate_limit_rps,
                       capacity=max(1.0, rate_limit_rps * burst_s),
                       start_s=start_s)

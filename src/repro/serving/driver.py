"""The serving tier runtime: open-loop tenants driving the sharded PS.

One :class:`ServingTier` attaches to a :class:`~repro.psarch.job.PSTrainingJob`
and runs one simulation process per tenant.  Each process walks a fully
precomputed arrival trace (times, Zipf key ranks, read/write flags — see
:mod:`repro.serving.arrivals`) and, per request:

1. charges the tenant's token bucket (empty bucket → shed ``"throttled"``);
2. maps the key rank to a parameter shard — hottest keys land on the
   heaviest-weighted shards, so Zipf popularity concentrates on the
   scenario's declared ``hot_shards``;
3. routes: writes go to the shard's primary, reads pick the least-loaded
   live member of the replica chain (primary + warm standbys), so PR-7
   replicas finally serve traffic;
4. admits against the target's bounded in-flight budget (full → shed
   ``"overload"``) and submits through the ordinary
   :meth:`ParameterServer.submit` path, sharing the acknowledgement chain
   with training pushes — colocation contention is physical, not modelled;
5. completes via a callback on the request's done event, which fires at
   the acknowledgement instant in both engine coalescing modes, releasing
   the admission slot and recording the latency.

Requests carry a ``serve:<tenant>`` pseudo-worker name; the job's requeue
filter admits the prefix so an in-flight serving request survives a server
kill (it replays after the relaunch, or is re-delivered to a promoted
standby) instead of being dropped with the training backlog of departed
workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..psarch.job import SERVING_WORKER_PREFIX
from .admission import AdmissionLedger
from .arrivals import arrival_times, zipf_keys
from .slo import SLOTracker
from .spec import ServingSpec, TenantSpec
from .tenants import bucket_for

__all__ = ["ServingTier", "SERVING_WORKER_PREFIX"]

#: Salt mixed into every tenant's RNG seed sequence (spells "SRV").
_SEED_SALT = 0x535256


class ServingTier:
    """Open-loop request traffic against a training job's server tier."""

    def __init__(self, job, spec: ServingSpec, seed: int = 0,
                 recorder=None) -> None:
        if not spec:
            raise ValueError("a serving tier needs at least one tenant")
        self.job = job
        self.env = job.env
        self.spec = spec
        self.recorder = recorder if recorder is not None else job.recorder
        self.admission = AdmissionLedger(spec.queue_capacity)
        self.slo = SLOTracker(spec.window_s)
        self.arrivals = 0
        self.admitted = 0
        self.completed = 0
        self._shed_counts = {"overload": 0, "throttled": 0}
        self._seed = int(seed)
        self._targets_cache: Tuple[Optional[list], Dict[str, object]] = (None, {})
        self._shard_order: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Launch (called by PSTrainingJob.start once servers are up).
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Precompute every tenant's trace and launch its process."""
        spec = self.spec
        smap = self.job.shard_map
        # Shards sorted heaviest-first: block-mapping hot key ranks onto
        # this order concentrates Zipf mass on the declared hot shards.
        self._shard_order = sorted(
            range(smap.num_shards),
            key=lambda shard: (-smap.weight_of(shard), shard))
        for index, tenant in enumerate(spec.tenants):
            rng = np.random.default_rng((self._seed, _SEED_SALT, index))
            times = arrival_times(rng, tenant.shape, tenant.rate_rps,
                                  spec.start_s, spec.duration_s)
            keys = zipf_keys(rng, times.shape[0], spec.num_keys, spec.zipf_s)
            reads = rng.random(times.shape[0]) < spec.read_fraction
            self.env.process(self._tenant_proc(tenant, times, keys, reads))

    def _tenant_proc(self, tenant: TenantSpec, times: np.ndarray,
                     keys: np.ndarray, reads: np.ndarray):
        env = self.env
        job = self.job
        spec = self.spec
        slo = self.slo
        bucket = bucket_for(tenant.rate_limit_rps, tenant.burst_s,
                            spec.start_s)
        name = tenant.name
        num_shards = len(self._shard_order)
        for i in range(times.shape[0]):
            when = float(times[i])
            if when > env.now:
                yield env.timeout(when - env.now)
            if job.completed:
                return
            now = env.now
            self.arrivals += 1
            slo.on_arrival(name, now)
            if bucket is not None and not bucket.try_acquire(now):
                self._shed(name, now, "throttled")
                continue
            shard = self._shard_order[
                (int(keys[i]) * num_shards) // spec.num_keys]
            self._dispatch(name, now, shard, bool(reads[i]))

    # ------------------------------------------------------------------
    # Routing, admission, completion.
    # ------------------------------------------------------------------

    def _target_index(self) -> Dict[str, object]:
        """Name -> live server, rebuilt only when the target list changes."""
        targets = self.job.push_targets()
        cached_list, index = self._targets_cache
        if cached_list is not targets:
            index = {server.name: server for server in targets}
            self._targets_cache = (targets, index)
        return index

    def _dispatch(self, tenant: str, now: float, shard: int,
                  is_read: bool) -> None:
        job = self.job
        smap = job.shard_map
        index = self._target_index()
        owner = smap.owner_of(shard)
        target = index.get(owner) if owner is not None else None
        if is_read:
            standbys = smap.standbys_of(shard)
            if standbys:
                admission = self.admission
                best_depth = (admission.inflight(target.name)
                              if target is not None else None)
                for standby_name in standbys:
                    standby = index.get(standby_name)
                    if standby is None:
                        continue
                    depth = admission.inflight(standby_name)
                    if best_depth is None or depth < best_depth:
                        target, best_depth = standby, depth
        if target is None:
            # The owner fell out of the push rotation with no live replica
            # to absorb the read: degrade rather than queue unboundedly.
            self._shed(tenant, now, "overload")
            return
        server_name = target.name
        if not self.admission.try_admit(server_name):
            self._shed(tenant, now, "overload")
            return
        self.admitted += 1
        done = target.submit(SERVING_WORKER_PREFIX + tenant,
                             self.spec.request_bytes)
        done.callbacks.append(
            lambda _event, tenant=tenant, arrival=now,
            server_name=server_name: self._on_ack(tenant, arrival,
                                                  server_name))

    def _on_ack(self, tenant: str, arrival: float, server_name: str) -> None:
        ack = self.env.now
        self.admission.release(server_name)
        self.completed += 1
        self.slo.on_completion(tenant, ack, ack - arrival)
        recorder = self.recorder
        if recorder.enabled:
            recorder.span(f"serving:{tenant}", "request", arrival, ack,
                          cat="serving", args={"server": server_name})

    def _shed(self, tenant: str, now: float, reason: str) -> None:
        self._shed_counts[reason] += 1
        self.slo.on_shed(tenant, now, reason)
        recorder = self.recorder
        if recorder.enabled:
            recorder.counter("serving", f"shed-{reason}", now,
                             self._shed_counts[reason])

    # ------------------------------------------------------------------
    # Policy input and fingerprint section.
    # ------------------------------------------------------------------

    def slo_snapshot(self) -> Dict[str, float]:
        """Windowed SLO view for the ``serving-slo`` autoscaler policy."""
        return self.slo.snapshot(self.env.now, self.admission.total_inflight())

    def finalize(self, jct: float) -> Dict[str, object]:
        """Cumulative serving summary for the run fingerprint."""
        spec = self.spec
        elapsed = max(0.0, min(jct, spec.start_s + spec.duration_s)
                      - spec.start_s)
        summary = self.slo.finalize(elapsed, self.admitted - self.completed)
        summary["peak_server_inflight"] = self.admission.peak_inflight()
        return summary

"""`repro.serving` — an open-loop traffic tier against the sharded PS.

The subsystem splits into a dependency-light declarative layer and a
runtime layer:

- :mod:`~repro.serving.spec` — :class:`ServingSpec` / :class:`TenantSpec`
  (lossless JSON round-trip, named presets for the orchestrator grid);
- :mod:`~repro.serving.arrivals` — seeded arrival traces (uniform,
  diurnal, bursty, flash-crowd) and Zipf key sampling;
- :mod:`~repro.serving.tenants` — per-tenant token-bucket throttling;
- :mod:`~repro.serving.admission` — bounded per-server admission
  (queue-based load leveling with an explicit shed path);
- :mod:`~repro.serving.slo` — p50/p99 latency, shed rate and goodput
  accounting, cumulative (fingerprint) and windowed (autoscaler policy);
- :mod:`~repro.serving.driver` — the :class:`ServingTier` runtime that
  attaches tenant processes to a training job.
"""

from .admission import AdmissionLedger
from .arrivals import arrival_times, zipf_keys
from .driver import SERVING_WORKER_PREFIX, ServingTier
from .slo import SLOTracker
from .spec import NO_SERVING, SERVING_PRESETS, ServingSpec, TenantSpec
from .tenants import TokenBucket

__all__ = [
    "AdmissionLedger",
    "arrival_times",
    "zipf_keys",
    "SERVING_WORKER_PREFIX",
    "ServingTier",
    "SLOTracker",
    "NO_SERVING",
    "SERVING_PRESETS",
    "ServingSpec",
    "TenantSpec",
    "TokenBucket",
]

"""Bounded per-server admission — queue-based load leveling with a shed path.

Each serving target gets a bounded in-flight budget (``queue_capacity``
requests admitted but not yet acknowledged).  A request routed to a full
server is shed immediately with an ``"overload"`` degraded response —
the 429 path — instead of being parked on an unbounded queue, so a burst
levels out at bounded latency rather than collapsing the tier.

The ledger counts *admission to acknowledgement* using the parameter
server's completion events, which fire at the same simulation time in
both engine coalescing modes; the ledger is therefore mode-invariant and
safe to fingerprint.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["AdmissionLedger"]


class AdmissionLedger:
    """Tracks in-flight request counts against a per-server bound."""

    __slots__ = ("capacity", "_inflight", "_peak")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._inflight: Dict[str, int] = {}
        self._peak: Dict[str, int] = {}

    def inflight(self, server: str) -> int:
        return self._inflight.get(server, 0)

    def total_inflight(self) -> int:
        return sum(self._inflight.values())

    def least_loaded(self, servers: Iterable[str]) -> str:
        """First server (in iteration order) with the fewest in flight."""
        best = None
        best_depth = -1
        for server in servers:
            depth = self._inflight.get(server, 0)
            if best is None or depth < best_depth:
                best, best_depth = server, depth
        if best is None:
            raise ValueError("least_loaded needs at least one candidate")
        return best

    def try_admit(self, server: str) -> bool:
        """Admit one request to ``server`` unless its budget is full."""
        depth = self._inflight.get(server, 0)
        if depth >= self.capacity:
            return False
        depth += 1
        self._inflight[server] = depth
        if depth > self._peak.get(server, 0):
            self._peak[server] = depth
        return True

    def release(self, server: str) -> None:
        """Acknowledge one in-flight request on ``server``."""
        depth = self._inflight.get(server, 0)
        if depth <= 0:
            raise ValueError(f"release without admission on {server!r}")
        self._inflight[server] = depth - 1

    def peak_inflight(self) -> int:
        """Highest single-server depth ever observed."""
        return max(self._peak.values(), default=0)

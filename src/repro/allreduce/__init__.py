"""AllReduce (DDP) training architecture for dedicated GPU clusters."""

from .event_driven import EventDrivenAllReduceJob, GroupStateArrays
from .job import AllReduceJob, AllReduceResult
from .strategies import (
    DeviceAssignment,
    GPUWorkerGroup,
    antdt_dd_assignment,
    even_assignment,
    groups_to_solver_groups,
    lb_bsp_assignment,
)

__all__ = [
    "AllReduceJob",
    "AllReduceResult",
    "EventDrivenAllReduceJob",
    "GroupStateArrays",
    "DeviceAssignment",
    "GPUWorkerGroup",
    "antdt_dd_assignment",
    "even_assignment",
    "groups_to_solver_groups",
    "lb_bsp_assignment",
]

"""Batch-size assignment strategies for AllReduce (DDP) training.

The paper's Fig. 9 contrasts three ways of driving a heterogeneous GPU
cluster (4×V100 + 4×P100) under the BSP AllReduce paradigm:

* **Native DDP** — every device gets the same per-device batch ``B / n``; the
  slow devices pace the iteration, the fast devices idle at the barrier.
* **LB-BSP** — per-device batch sizes proportional to measured throughput
  (clipped to device memory).  This levels iteration times but pushes the
  slow devices below their saturation point, wasting their capacity, and it
  keeps the synchronisation frequency of native DDP.
* **AntDT-DD** — every device runs at its full (memory-bound) batch size and
  performs ``C_i`` gradient-accumulation steps chosen to equalise the time
  until the next synchronisation (Eq. 4).  All devices stay saturated and the
  effective samples-per-synchronisation grows, amortising the AllReduce cost
  — which is why the gain is largest for communication-intensive models such
  as MobileNets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.solvers import DeviceGroup, solve_batch_sizes
from ..sim.hardware import DeviceProfile

__all__ = ["GPUWorkerGroup", "DeviceAssignment", "even_assignment", "lb_bsp_assignment",
           "antdt_dd_assignment", "groups_to_solver_groups"]


@dataclass(frozen=True)
class GPUWorkerGroup:
    """A homogeneous group of GPU workers in the AllReduce job."""

    name: str
    device: DeviceProfile
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.device.kind != "gpu":
            raise ValueError("GPUWorkerGroup requires a GPU device profile")


@dataclass(frozen=True)
class DeviceAssignment:
    """Per-group batch size and gradient accumulation count."""

    group: str
    batch_size: int
    accumulation: int = 1

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.accumulation < 1:
            raise ValueError("accumulation must be >= 1")

    @property
    def samples_per_sync(self) -> int:
        """Samples one device of this group contributes per synchronisation."""
        return self.batch_size * self.accumulation


def groups_to_solver_groups(groups: Sequence[GPUWorkerGroup],
                            model_cost: float = 1.0) -> List[DeviceGroup]:
    """Convert GPU worker groups into the Eq. 4 solver's device groups."""
    solver_groups = []
    for group in groups:
        saturation = int(group.device.saturation_batch or 1)
        limit = int(group.device.memory_limit_batch or max(saturation, 1))
        solver_groups.append(
            DeviceGroup(
                name=group.name,
                count=group.count,
                throughput=group.device.samples_per_second / model_cost,
                min_batch=saturation,
                max_batch=limit,
            )
        )
    return solver_groups


def even_assignment(groups: Sequence[GPUWorkerGroup], global_batch: int) -> List[DeviceAssignment]:
    """Native DDP: the same per-device batch for every device."""
    total_devices = sum(group.count for group in groups)
    if total_devices <= 0:
        raise ValueError("at least one device is required")
    per_device = max(1, global_batch // total_devices)
    assignments = []
    for group in groups:
        limit = group.device.memory_limit_batch
        if limit is not None and per_device > limit:
            raise ValueError(
                f"native DDP would OOM: per-device batch {per_device} exceeds the "
                f"{group.name} memory limit {limit}"
            )
        assignments.append(DeviceAssignment(group=group.name, batch_size=per_device))
    return assignments


def lb_bsp_assignment(groups: Sequence[GPUWorkerGroup], global_batch: int,
                      model_cost: float = 1.0) -> List[DeviceAssignment]:
    """LB-BSP: throughput-proportional batch sizes, clipped to device memory.

    LB-BSP assumes the compute time is linear in batch size, so it ignores the
    saturation point; the resulting slow-device batches can fall below
    saturation and waste capacity (the drawback AntDT-DD fixes).
    """
    throughputs: Dict[str, float] = {}
    limits: Dict[str, int] = {}
    for group in groups:
        for index in range(group.count):
            worker = f"{group.name}-{index}"
            throughputs[worker] = group.device.samples_per_second / model_cost
            if group.device.memory_limit_batch is not None:
                limits[worker] = int(group.device.memory_limit_batch)
    sizes = solve_batch_sizes(throughputs, global_batch=global_batch, min_batch=1,
                              max_batch=limits or None)
    assignments = []
    for group in groups:
        representative = f"{group.name}-0"
        assignments.append(DeviceAssignment(group=group.name, batch_size=sizes[representative]))
    return assignments


def antdt_dd_assignment(groups: Sequence[GPUWorkerGroup], global_batch: int,
                        model_cost: float = 1.0, max_accumulation: int = 5
                        ) -> List[DeviceAssignment]:
    """AntDT-DD: saturate every device and fill the sync period exactly (Eq. 4).

    The slowest device series, running its full (memory-bound) batch size with
    a single accumulation step, anchors the synchronisation period — its
    compute capacity is the irreducible bottleneck.  Every faster series then
    picks the accumulation count ``C`` and batch size ``B`` (between its
    saturation point and memory limit) that maximise the samples it can
    contribute within that period, so no device idles before the AllReduce and
    the effective samples-per-synchronisation grows beyond ``global_batch``,
    amortising communication.
    """
    if max_accumulation < 1:
        raise ValueError("max_accumulation must be >= 1")

    def full_batch(group: GPUWorkerGroup) -> int:
        return int(group.device.memory_limit_batch or group.device.saturation_batch or 1)

    step_times = {group.name: group.device.batch_time(full_batch(group), model_cost)
                  for group in groups}
    anchor_period = max(step_times.values())

    assignments: List[DeviceAssignment] = []
    for group in groups:
        device = group.device
        saturation = int(device.saturation_batch or 1)
        limit = full_batch(group)
        per_sample = model_cost / device.samples_per_second
        best = DeviceAssignment(group=group.name, batch_size=limit, accumulation=1)
        best_samples = limit if step_times[group.name] <= anchor_period else 0
        for accumulation in range(1, max_accumulation + 1):
            budget = anchor_period / accumulation - device.base_overhead
            if budget <= 0:
                break
            batch = int(min(limit, budget / per_sample))
            if batch < saturation:
                continue
            if device.batch_time(batch, model_cost) * accumulation > anchor_period * 1.0001:
                continue
            samples = batch * accumulation
            if samples > best_samples:
                best_samples = samples
                best = DeviceAssignment(group=group.name, batch_size=batch,
                                        accumulation=accumulation)
        assignments.append(best)

    # Sanity: the effective batch per synchronisation never falls below the
    # user-specified global batch (it is the whole point of the method that it
    # grows past it).
    effective = sum(group.count * assignment.samples_per_sync
                    for group, assignment in zip(groups, assignments))
    if effective < global_batch:
        return lb_bsp_assignment(groups, global_batch, model_cost)
    return assignments

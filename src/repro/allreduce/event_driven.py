"""Event-driven AllReduce training on the discrete-event engine.

The closed-form :class:`~repro.allreduce.job.AllReduceJob` answers "how long
does this run take" instantly, but it has no clock — membership changes can
only be replayed phase by phase outside any simulation
(:class:`~repro.elastic.allreduce.ElasticAllReduceJob`).  This module puts the
same job *on* the :class:`~repro.sim.engine.Environment`, which makes it
composable with everything else that lives there (failure injectors,
schedulers, mixed PS+AllReduce scenarios) while staying exactly as cheap:

* **Array-backed group state.**  Device groups are columnar
  (:class:`GroupStateArrays`): per-phase sync period and samples-per-sync are
  vectorized reductions, and a membership change is an array update — the
  AllReduce twin of the job-owned worker/server state arrays in
  :mod:`repro.psarch`.
* **Quiescent-window fast-forward.**  Within a constant-membership phase the
  synchronisations are a deterministic periodic stream, so they run as one
  :class:`~repro.sim.engine.PeriodicTask`: with coalescing enabled the engine
  folds the whole phase into a single closed-form clock advance; with
  ``Environment(coalesce=False)`` every sync is stepped as its own heap event
  and produces bit-identical results.

The result mirrors :class:`~repro.elastic.allreduce.ElasticAllReduceResult`
field for field, and the unit tests pin exact (bitwise) agreement of the
event-driven run against the closed-form replay.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..elastic.allreduce import (ElasticAllReduceResult, ElasticPhase,
                                 MembershipChange)
from ..sim.engine import Environment, PeriodicTask
from ..sim.network import ring_allreduce_time
from .job import AllReduceJob
from .strategies import DeviceAssignment

__all__ = ["GroupStateArrays", "EventDrivenAllReduceJob"]


class GroupStateArrays:
    """Columnar per-group state of an event-driven AllReduce job.

    One slot per device group.  The per-sync aggregates the driver needs —
    the synchronisation period (slowest group's compute) and the global
    samples per sync — are vectorized reductions over these arrays, and an
    elastic membership change touches only the ``counts`` column.
    """

    _FIELDS = ("counts", "compute_s", "device_samples")

    def __init__(self, capacity: int = 0) -> None:
        capacity = max(int(capacity), 1)
        #: Devices currently in the group (0 = group absent this phase).
        self.counts = np.zeros(capacity, dtype=np.int64)
        #: Per-sync compute time of one device of the group (micro-batch
        #: time x gradient accumulation) — fixed by the assignment.
        self.compute_s = np.zeros(capacity, dtype=np.float64)
        #: Samples one device contributes per sync — fixed by the assignment.
        self.device_samples = np.zeros(capacity, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def allocate_slot(self) -> int:
        """Claim the next slot (growing the arrays when full); returns its index."""
        slot = self._size
        capacity = len(self.counts)
        if slot >= capacity:
            grown = max(capacity * 2, slot + 1)
            for name in self._FIELDS:
                array = getattr(self, name)
                extended = np.zeros(grown, dtype=array.dtype)
                extended[:capacity] = array
                setattr(self, name, extended)
        self._size = slot + 1
        return slot

    def num_devices(self) -> int:
        """Devices across every present group."""
        return int(self.counts[:self._size].sum())

    def sync_compute_s(self) -> float:
        """Slowest present group's per-sync compute (the BSP straggler)."""
        size = self._size
        counts = self.counts[:size]
        present = counts > 0
        return float(self.compute_s[:size][present].max())

    def samples_per_sync(self) -> int:
        """Samples the whole fleet trains per synchronisation."""
        size = self._size
        return int((self.counts[:size] * self.device_samples[:size]).sum())


class EventDrivenAllReduceJob:
    """Run an :class:`AllReduceJob` on the discrete-event engine, elastically.

    Constant-membership phases execute as a periodic synchronisation stream
    (one tick per AllReduce sync); membership changes land at phase
    boundaries, charge their rendezvous cost on the simulation clock, and
    update the columnar group state.  Semantics — phase boundaries, sync
    counts, sample caps — match :class:`ElasticAllReduceJob` exactly, and the
    completion time agrees bitwise.
    """

    def __init__(self, job: AllReduceJob, env: Optional[Environment] = None) -> None:
        self.job = job
        self.env = env if env is not None else Environment()

    def run(self, assignments: Sequence[DeviceAssignment],
            changes: Sequence[MembershipChange] = (),
            strategy: str = "elastic-event") -> ElasticAllReduceResult:
        """Simulate the job on the environment's clock; see the class docstring."""
        job = self.job
        env = self.env
        thresholds = [change.after_samples for change in changes]
        if thresholds != sorted(set(thresholds)):
            raise ValueError(
                "membership changes must be ordered by strictly increasing "
                "after_samples")
        by_group = {assignment.group: assignment for assignment in assignments}
        missing = {group.name for group in job.groups} - set(by_group)
        if missing:
            raise ValueError(f"assignments missing for groups: {sorted(missing)}")

        # Columnar group state; the assignment-derived columns are fixed for
        # the whole run, membership changes only move counts.
        state = GroupStateArrays(len(job.groups))
        slots: Dict[str, int] = {}
        for group in job.groups:
            assignment = by_group[group.name]
            limit = group.device.memory_limit_batch
            if limit is not None and assignment.batch_size > limit:
                raise ValueError(
                    f"assignment for {group.name} ({assignment.batch_size}) exceeds "
                    f"the memory limit {limit} (OOM)")
            slot = slots[group.name] = state.allocate_slot()
            state.counts[slot] = group.count
            micro = group.device.batch_time(assignment.batch_size, job.model.compute_cost)
            state.compute_s[slot] = micro * assignment.accumulation
            state.device_samples[slot] = assignment.samples_per_sync

        total = job.workload.total_samples
        phases: List[ElasticPhase] = []
        trained = 0
        rendezvous_total = 0.0
        pending = list(changes)
        start_time = env.now
        synced = [0]

        def on_tick(_when: float) -> None:
            synced[0] += 1

        def on_fold(n: int, _last_when: float) -> None:
            synced[0] += n

        while trained < total:
            horizon = min(pending[0].after_samples, total) if pending else total
            quota = horizon - trained
            per_sync = state.samples_per_sync()
            period = (state.sync_compute_s()
                      + ring_allreduce_time(job.model.num_parameters,
                                            state.num_devices(), job.network)
                      + job.sync_overhead_s)
            syncs = max(1, math.ceil(quota / per_sync))
            # The phase is a pure periodic sync stream: with coalescing on
            # the engine folds it into one clock advance, with it off every
            # sync pops individually — identical state either way.
            synced[0] = 0
            task = PeriodicTask(env, period, on_tick, on_fold,
                                first_at=env.now + period)
            env.run(until=env.now + syncs * period)
            task.stop()
            if synced[0] != syncs:
                raise RuntimeError(
                    f"phase desynchronised: {synced[0]} ticks for {syncs} syncs")
            samples = min(syncs * per_sync, quota)
            phases.append(ElasticPhase(
                group_counts={name: int(state.counts[slot])
                              for name, slot in slots.items()},
                num_syncs=syncs,
                sync_period_s=period,
                samples_per_sync=per_sync,
                duration_s=syncs * period,
                samples_trained=samples,
            ))
            trained += samples
            if pending and trained >= pending[0].after_samples:
                change = pending.pop(0)
                for name, count in change.group_counts.items():
                    slot = slots.get(name)
                    if slot is None:
                        raise ValueError(f"membership change names unknown group {name!r}")
                    state.counts[slot] = count
                if state.num_devices() == 0:
                    raise ValueError("membership change removed every device group")
                if change.rendezvous_cost_s > 0:
                    # The rendezvous is dead time on the clock: the world is
                    # being rebuilt, no syncs run.
                    env.run(until=env.now + change.rendezvous_cost_s)
                rendezvous_total += change.rendezvous_cost_s
        return ElasticAllReduceResult(
            phases=phases,
            job_completion_time_s=env.now - start_time,
            rendezvous_total_s=rendezvous_total,
            samples_trained=trained,
        )

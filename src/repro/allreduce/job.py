"""AllReduce (PyTorch-DDP style) training simulation.

Unlike the Parameter Server architecture, AllReduce training is strictly
bulk-synchronous and its per-iteration structure is deterministic once the
per-device batch sizes and accumulation counts are fixed (the dedicated GPU
cluster has no random contention).  The job is therefore simulated
iteration-by-iteration in closed form, which keeps the GPU experiments
(paper Fig. 15) instant even at ImageNet scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ml.data.imagenet import ImageWorkload
from ..ml.models.cost_models import ModelCostProfile
from ..sim.network import NetworkModel, ring_allreduce_time
from .strategies import DeviceAssignment, GPUWorkerGroup

__all__ = ["AllReduceResult", "AllReduceJob"]


@dataclass
class AllReduceResult:
    """Summary of one simulated AllReduce training run."""

    strategy: str
    job_completion_time_s: float
    num_syncs: int
    sync_period_s: float
    allreduce_time_s: float
    samples_per_sync: int
    per_group_compute_s: Dict[str, float]
    per_group_idle_s: Dict[str, float]
    per_group_assignment: Dict[str, DeviceAssignment]

    @property
    def jct(self) -> float:
        """Alias for the job completion time in seconds."""
        return self.job_completion_time_s

    def idle_fraction(self, group: str) -> float:
        """Fraction of the sync period a device of ``group`` spends idle."""
        period = self.per_group_compute_s[group] + self.per_group_idle_s[group]
        if period <= 0:
            return 0.0
        return self.per_group_idle_s[group] / period


class AllReduceJob:
    """One AllReduce training job over a heterogeneous dedicated GPU cluster.

    Parameters
    ----------
    groups:
        The GPU worker groups (e.g. 4×V100 and 4×P100).
    model:
        Cost profile of the model (parameters -> AllReduce volume,
        ``compute_cost`` -> per-sample compute scaling).
    workload:
        How many samples to train for.
    global_batch_size:
        The user-facing global batch size ``B``.
    network:
        Inter-node link model used for the ring AllReduce.
    sync_overhead_s:
        Fixed per-synchronisation cost (optimizer step, hook overhead).
    """

    def __init__(
        self,
        groups: Sequence[GPUWorkerGroup],
        model: ModelCostProfile,
        workload: ImageWorkload,
        global_batch_size: int,
        network: Optional[NetworkModel] = None,
        sync_overhead_s: float = 0.01,
    ) -> None:
        if not groups:
            raise ValueError("at least one GPU worker group is required")
        if global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if sync_overhead_s < 0:
            raise ValueError("sync_overhead_s must be non-negative")
        self.groups = list(groups)
        self.model = model
        self.workload = workload
        self.global_batch_size = global_batch_size
        self.network = network if network is not None else NetworkModel(latency_s=0.0005,
                                                                        bandwidth_gbps=25.0)
        self.sync_overhead_s = sync_overhead_s

    @property
    def num_devices(self) -> int:
        """Total number of GPU devices in the job."""
        return sum(group.count for group in self.groups)

    def _group(self, name: str) -> GPUWorkerGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"unknown device group {name!r}")

    def run(self, assignments: Sequence[DeviceAssignment], strategy: str = "custom"
            ) -> AllReduceResult:
        """Simulate the job under the given per-group assignment."""
        if not assignments:
            raise ValueError("assignments must not be empty")
        by_group = {assignment.group: assignment for assignment in assignments}
        missing = {group.name for group in self.groups} - set(by_group)
        if missing:
            raise ValueError(f"assignments missing for groups: {sorted(missing)}")

        # Per-group compute time until the synchronisation point.
        compute: Dict[str, float] = {}
        for group in self.groups:
            assignment = by_group[group.name]
            limit = group.device.memory_limit_batch
            if limit is not None and assignment.batch_size > limit:
                raise ValueError(
                    f"assignment for {group.name} ({assignment.batch_size}) exceeds the "
                    f"memory limit {limit} (OOM)"
                )
            micro = group.device.batch_time(assignment.batch_size, self.model.compute_cost)
            compute[group.name] = micro * assignment.accumulation

        slowest = max(compute.values())
        allreduce = ring_allreduce_time(self.model.num_parameters, self.num_devices, self.network)
        sync_period = slowest + allreduce + self.sync_overhead_s

        samples_per_sync = sum(
            group.count * by_group[group.name].samples_per_sync for group in self.groups
        )
        num_syncs = max(1, math.ceil(self.workload.total_samples / samples_per_sync))
        jct = num_syncs * sync_period

        idle = {name: slowest - value for name, value in compute.items()}
        return AllReduceResult(
            strategy=strategy,
            job_completion_time_s=jct,
            num_syncs=num_syncs,
            sync_period_s=sync_period,
            allreduce_time_s=allreduce,
            samples_per_sync=samples_per_sync,
            per_group_compute_s=compute,
            per_group_idle_s=idle,
            per_group_assignment=dict(by_group),
        )

"""Optimizers for the NumPy mini deep-learning substrate.

Optimizers operate on parameter dictionaries (name -> ndarray), the same
representation the simulated parameter servers shard across server nodes.
They also expose ``state_dict``/``load_state_dict`` so checkpoints can save
optimizer slots (momentum, Adam moments) exactly like a real training stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "Adagrad", "scale_learning_rate"]

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


class Optimizer:
    """Base class: holds the parameters and a (mutable) learning rate."""

    def __init__(self, params: Params, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = float(lr)
        self.steps = 0

    def step(self, grads: Grads) -> None:
        """Apply one update from a gradient dictionary."""
        raise NotImplementedError

    def _check(self, grads: Grads) -> None:
        for name in grads:
            if name not in self.params:
                raise KeyError(f"gradient for unknown parameter {name!r}")

    def state_dict(self) -> Dict[str, object]:
        """Serializable optimizer state (learning rate, step count, slots)."""
        return {"lr": self.lr, "steps": self.steps}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore optimizer state saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])
        self.steps = int(state["steps"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, grads: Grads) -> None:
        self._check(grads)
        for name, grad in grads.items():
            param = self.params[name]
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            if self.momentum:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + update
                self._velocity[name] = velocity
                update = velocity
            param -= self.lr * update
        self.steps += 1

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = {name: value.copy() for name, value in self._velocity.items()}
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        velocity = state.get("velocity", {})
        self._velocity = {name: np.array(value, copy=True) for name, value in velocity.items()}


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, params: Params, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def step(self, grads: Grads) -> None:
        self._check(grads)
        self.steps += 1
        bias1 = 1.0 - self.beta1**self.steps
        bias2 = 1.0 - self.beta2**self.steps
        for name, grad in grads.items():
            param = self.params[name]
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["m"] = {name: value.copy() for name, value in self._m.items()}
        state["v"] = {name: value.copy() for name, value in self._v.items()}
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._m = {name: np.array(value, copy=True) for name, value in state.get("m", {}).items()}
        self._v = {name: np.array(value, copy=True) for name, value in state.get("v", {}).items()}


class Adagrad(Optimizer):
    """Adagrad: per-coordinate adaptive learning rates, common for sparse CTR models."""

    def __init__(self, params: Params, lr: float = 0.05, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum: Dict[str, np.ndarray] = {}

    def step(self, grads: Grads) -> None:
        self._check(grads)
        for name, grad in grads.items():
            param = self.params[name]
            accum = self._accum.get(name)
            if accum is None:
                accum = np.zeros_like(param)
            accum = accum + grad * grad
            self._accum[name] = accum
            param -= self.lr * grad / (np.sqrt(accum) + self.eps)
        self.steps += 1

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["accum"] = {name: value.copy() for name, value in self._accum.items()}
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._accum = {
            name: np.array(value, copy=True) for name, value in state.get("accum", {}).items()
        }


def scale_learning_rate(optimizer: Optimizer, factor: float) -> float:
    """Scale an optimizer's learning rate in place (the ADJUST_LR action).

    Returns the new learning rate.  Factors below one penalize a lagging
    worker; factors above one boost a leader.
    """
    if factor <= 0:
        raise ValueError("learning-rate factor must be positive")
    optimizer.lr *= factor
    return optimizer.lr

"""Loss functions for the NumPy mini deep-learning substrate.

Each loss returns both the scalar loss value and the gradient with respect to
the model's logits, so models only need to implement a backward pass from the
logit gradient.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["sigmoid", "bce_with_logits", "mse", "softmax_cross_entropy"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Binary cross-entropy on logits.

    Returns the mean loss and ``d(loss)/d(logits)`` (already divided by the
    batch size, so gradients from different batch sizes are comparable).
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if logits.shape != labels.shape:
        raise ValueError(f"shape mismatch: logits {logits.shape} vs labels {labels.shape}")
    n = logits.shape[0]
    if n == 0:
        raise ValueError("empty batch")
    # log(1 + exp(-|x|)) + max(x, 0) - x*y is the stable form.
    loss = np.mean(np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits))))
    probs = sigmoid(logits)
    grad = (probs - labels) / n
    return float(loss), grad


def mse(predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient with respect to predictions."""
    predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError("shape mismatch between predictions and targets")
    n = predictions.shape[0]
    if n == 0:
        raise ValueError("empty batch")
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / n
    return loss, grad


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Multi-class cross entropy.

    ``logits`` has shape ``(n, num_classes)`` and ``labels`` holds integer
    class indices of shape ``(n,)``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if logits.ndim != 2 or logits.shape[0] != labels.shape[0]:
        raise ValueError("logits must be (n, classes) and labels (n,)")
    n = logits.shape[0]
    if n == 0:
        raise ValueError("empty batch")
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss = float(-np.mean(log_probs[np.arange(n), labels]))
    probs = np.exp(log_probs)
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad

"""A fully-connected network with ReLU activations.

Used standalone (as the in-house "deep model" stand-in for the Cluster-C
scalability workload) and as the DNN tower inside the XDeepFM-lite model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Batch
from .base import Gradients, Model

__all__ = ["MLP", "DenseStack"]


class DenseStack:
    """A reusable stack of dense layers operating on raw arrays.

    This helper owns no parameters itself; it reads and writes them through a
    prefix in a shared parameter dictionary, so a composite model (XDeepFM)
    can expose a single flat parameter dict for the parameter servers.
    """

    def __init__(self, params: Dict[str, np.ndarray], prefix: str, input_dim: int,
                 hidden_dims: Sequence[int], output_dim: int, seed: int = 0) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        rng = np.random.default_rng(seed)
        self.prefix = prefix
        self.params = params
        self.dims: List[int] = [input_dim, *list(hidden_dims), output_dim]
        for layer in range(len(self.dims) - 1):
            fan_in, fan_out = self.dims[layer], self.dims[layer + 1]
            scale = np.sqrt(2.0 / fan_in)
            params[f"{prefix}.w{layer}"] = rng.normal(0.0, scale, size=(fan_in, fan_out))
            params[f"{prefix}.b{layer}"] = np.zeros(fan_out)
        self._activations: Optional[List[np.ndarray]] = None

    @property
    def num_layers(self) -> int:
        """Number of dense layers in the stack."""
        return len(self.dims) - 1

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass; caches layer activations for backward."""
        activations = [np.asarray(inputs, dtype=np.float64)]
        hidden = activations[0]
        for layer in range(self.num_layers):
            w = self.params[f"{self.prefix}.w{layer}"]
            b = self.params[f"{self.prefix}.b{layer}"]
            hidden = hidden @ w + b
            if layer < self.num_layers - 1:
                hidden = np.maximum(hidden, 0.0)
            activations.append(hidden)
        self._activations = activations
        return hidden

    def backward(self, grad_output: np.ndarray) -> Tuple[Gradients, np.ndarray]:
        """Backward pass from the gradient of the stack output.

        Returns the parameter gradients (keyed with the stack prefix) and the
        gradient with respect to the stack input.
        """
        if self._activations is None:
            raise RuntimeError("backward called before forward")
        grads: Gradients = {}
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(range(self.num_layers)):
            inputs = self._activations[layer]
            outputs = self._activations[layer + 1]
            if layer < self.num_layers - 1:
                grad = grad * (outputs > 0.0)
            grads[f"{self.prefix}.w{layer}"] = inputs.T @ grad
            grads[f"{self.prefix}.b{layer}"] = grad.sum(axis=0)
            grad = grad @ self.params[f"{self.prefix}.w{layer}"].T
        return grads, grad


class MLP(Model):
    """Binary classifier: dense features -> hidden ReLU layers -> one logit."""

    def __init__(self, num_dense: int, hidden_dims: Sequence[int] = (32, 16), seed: int = 0) -> None:
        super().__init__()
        if num_dense <= 0:
            raise ValueError("num_dense must be positive")
        self.num_dense = num_dense
        self.stack = DenseStack(self.params, "mlp", num_dense, hidden_dims, 1, seed=seed)

    def forward(self, batch: Batch) -> np.ndarray:
        if batch.dense.shape[1] != self.num_dense:
            raise ValueError(
                f"expected {self.num_dense} dense features, got {batch.dense.shape[1]}"
            )
        return self.stack.forward(batch.dense).reshape(-1)

    def backward(self, batch: Batch, grad_logits: np.ndarray) -> Gradients:
        grad = np.asarray(grad_logits, dtype=np.float64).reshape(-1, 1)
        grads, _ = self.stack.backward(grad)
        return grads

"""Logistic regression on dense features.

The smallest trainable model in the substrate — used by unit tests,
property-based tests and the quickstart example where the focus is on the
framework, not the model.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..data.dataset import Batch
from .base import Gradients, Model

__all__ = ["LogisticRegression"]


class LogisticRegression(Model):
    """`logit = dense @ w + b` with binary cross-entropy training."""

    def __init__(self, num_dense: int, seed: int = 0) -> None:
        super().__init__()
        if num_dense <= 0:
            raise ValueError("num_dense must be positive")
        rng = np.random.default_rng(seed)
        self.num_dense = num_dense
        self.params = {
            "weight": rng.normal(0.0, 0.01, size=num_dense),
            "bias": np.zeros(1),
        }
        self._cache: Optional[Batch] = None

    def forward(self, batch: Batch) -> np.ndarray:
        if batch.dense.shape[1] != self.num_dense:
            raise ValueError(
                f"expected {self.num_dense} dense features, got {batch.dense.shape[1]}"
            )
        self._cache = batch
        return batch.dense @ self.params["weight"] + self.params["bias"][0]

    def backward(self, batch: Batch, grad_logits: np.ndarray) -> Gradients:
        grad_logits = np.asarray(grad_logits, dtype=np.float64).reshape(-1)
        if grad_logits.shape[0] != len(batch):
            raise ValueError("grad_logits size does not match the batch")
        return {
            "weight": batch.dense.T @ grad_logits,
            "bias": np.array([grad_logits.sum()]),
        }

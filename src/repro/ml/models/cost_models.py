"""Compute/communication cost descriptors for the paper's workload models.

The timing experiments do not need actual kernels — only how expensive one
sample is to process relative to the reference model of each device profile,
and how many parameters have to be synchronised per iteration.  This module
describes the three model families the paper evaluates:

* **XDeepFM** on Criteo (CPU Parameter Server, Cluster-A / Cluster-C);
* **ResNet-101** and **MobileNetV1** on ImageNet (GPU AllReduce, Cluster-B);
* a generic "in-house transformer ranking model" used for the Cluster-C
  scalability experiments.

``compute_cost`` is a multiplier on the device profile's per-sample cost:
the GPU profiles are calibrated for ResNet-101, so ResNet has cost 1.0 and
MobileNets (roughly 7.6 GFLOPs vs 0.57 GFLOPs per image) is much cheaper;
communication-wise MobileNets still synchronises 4.2 M parameters every
iteration, which is why it is the *communication-intensive* case in Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "ModelCostProfile",
    "MODEL_COSTS",
    "RESNET101",
    "MOBILENET_V1",
    "XDEEPFM_CRITEO",
    "INHOUSE_RANKING",
]


@dataclass(frozen=True)
class ModelCostProfile:
    """Cost description of one model architecture.

    Attributes
    ----------
    name:
        Architecture name.
    num_parameters:
        Number of trainable parameters (drives communication volume).
    gflops_per_sample:
        Forward+backward GFLOPs per sample (reporting only).
    compute_cost:
        Per-sample compute cost relative to the device profile's reference
        model (ResNet-101 for GPUs, XDeepFM for CPUs).
    """

    name: str
    num_parameters: int
    gflops_per_sample: float
    compute_cost: float

    def __post_init__(self) -> None:
        if self.num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        if self.compute_cost <= 0:
            raise ValueError("compute_cost must be positive")

    @property
    def gradient_bytes(self) -> float:
        """Bytes pushed/pulled per synchronisation (fp32 dense gradient)."""
        return float(self.num_parameters) * 4.0


RESNET101 = ModelCostProfile(
    name="resnet101",
    num_parameters=44_549_160,
    gflops_per_sample=7.6 * 3,
    compute_cost=1.0,
)

MOBILENET_V1 = ModelCostProfile(
    name="mobilenet_v1",
    num_parameters=4_233_000,
    gflops_per_sample=0.57 * 3,
    compute_cost=0.22,
)

XDEEPFM_CRITEO = ModelCostProfile(
    name="xdeepfm",
    num_parameters=20_000_000,
    gflops_per_sample=0.02,
    compute_cost=1.0,
)

INHOUSE_RANKING = ModelCostProfile(
    name="inhouse_ranking_transformer",
    num_parameters=120_000_000,
    gflops_per_sample=0.4,
    compute_cost=2.5,
)

MODEL_COSTS: Dict[str, ModelCostProfile] = {
    profile.name: profile
    for profile in (RESNET101, MOBILENET_V1, XDEEPFM_CRITEO, INHOUSE_RANKING)
}

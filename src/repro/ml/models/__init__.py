"""NumPy models and model cost profiles."""

from .base import Gradients, Model
from .cost_models import (
    INHOUSE_RANKING,
    MOBILENET_V1,
    MODEL_COSTS,
    RESNET101,
    XDEEPFM_CRITEO,
    ModelCostProfile,
)
from .linear import LogisticRegression
from .mlp import MLP, DenseStack
from .xdeepfm import XDeepFMLite

__all__ = [
    "DenseStack",
    "Gradients",
    "INHOUSE_RANKING",
    "LogisticRegression",
    "MLP",
    "MOBILENET_V1",
    "MODEL_COSTS",
    "Model",
    "ModelCostProfile",
    "RESNET101",
    "XDEEPFM_CRITEO",
    "XDeepFMLite",
]

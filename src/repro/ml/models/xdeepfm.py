"""XDeepFM-lite: embeddings + linear + CIN + DNN, in NumPy.

The paper's CPU experiments train XDeepFM (Lian et al., KDD'18) on Criteo.
XDeepFM combines a linear term, a Compressed Interaction Network (CIN) over
field embeddings, and a DNN tower.  This implementation keeps all three
components but uses a single CIN layer (the original stacks several); that is
sufficient for the reproduction because the experiments only need (a) a model
whose per-batch compute cost is realistic relative to the batch size and (b)
a model that actually learns the synthetic Criteo-like data so the AUC-based
data-integrity checks are meaningful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import Batch
from .base import Gradients, Model
from .mlp import DenseStack

__all__ = ["XDeepFMLite"]


class XDeepFMLite(Model):
    """Simplified XDeepFM for CTR prediction on tabular data.

    Parameters
    ----------
    field_cardinalities:
        Vocabulary size of each categorical field.
    num_dense:
        Number of dense features.
    embedding_dim:
        Dimension of every field embedding.
    cin_maps:
        Number of feature maps in the (single) CIN layer.
    dnn_hidden:
        Hidden layer sizes of the DNN tower.
    seed:
        Parameter initialisation seed.
    """

    def __init__(
        self,
        field_cardinalities: Sequence[int],
        num_dense: int,
        embedding_dim: int = 8,
        cin_maps: int = 8,
        dnn_hidden: Sequence[int] = (32, 16),
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not field_cardinalities:
            raise ValueError("at least one categorical field is required")
        if num_dense < 0:
            raise ValueError("num_dense must be non-negative")
        if embedding_dim <= 0 or cin_maps <= 0:
            raise ValueError("embedding_dim and cin_maps must be positive")
        rng = np.random.default_rng(seed)
        self.field_cardinalities = [int(c) for c in field_cardinalities]
        self.num_fields = len(self.field_cardinalities)
        self.num_dense = int(num_dense)
        self.embedding_dim = int(embedding_dim)
        self.cin_maps = int(cin_maps)

        # Embedding tables and first-order (linear) weights per field.
        for j, cardinality in enumerate(self.field_cardinalities):
            self.params[f"emb.{j}"] = rng.normal(0.0, 0.05, size=(cardinality, embedding_dim))
            self.params[f"lin.{j}"] = np.zeros(cardinality)
        self.params["lin.dense"] = np.zeros(self.num_dense)
        self.params["bias"] = np.zeros(1)

        # One CIN layer: W maps pairwise field interactions to `cin_maps` maps.
        self.params["cin.w"] = rng.normal(
            0.0, 0.1, size=(cin_maps, self.num_fields, self.num_fields)
        )
        self.params["cin.out"] = rng.normal(0.0, 0.1, size=cin_maps)

        dnn_input = self.num_fields * embedding_dim + self.num_dense
        self.dnn = DenseStack(self.params, "dnn", dnn_input, dnn_hidden, 1, seed=seed + 1)

        self._cache: Optional[Dict[str, np.ndarray]] = None

    # -- forward ---------------------------------------------------------------
    def forward(self, batch: Batch) -> np.ndarray:
        if batch.categorical is None:
            raise ValueError("XDeepFMLite requires categorical features")
        if batch.categorical.shape[1] != self.num_fields:
            raise ValueError(
                f"expected {self.num_fields} categorical fields, got {batch.categorical.shape[1]}"
            )
        if batch.dense.shape[1] != self.num_dense:
            raise ValueError(
                f"expected {self.num_dense} dense features, got {batch.dense.shape[1]}"
            )
        n = len(batch)
        # Embedding lookup: (n, m, d)
        embeddings = np.stack(
            [self.params[f"emb.{j}"][batch.categorical[:, j]] for j in range(self.num_fields)],
            axis=1,
        )
        # Linear term.
        linear = self.params["bias"][0] + batch.dense @ self.params["lin.dense"]
        for j in range(self.num_fields):
            linear = linear + self.params[f"lin.{j}"][batch.categorical[:, j]]

        # CIN layer: pairwise outer interactions compressed into `cin_maps` maps.
        pairwise = embeddings[:, :, None, :] * embeddings[:, None, :, :]  # (n, m, m, d)
        maps = np.einsum("nijd,hij->nhd", pairwise, self.params["cin.w"])  # (n, H, d)
        pooled = maps.sum(axis=2)  # (n, H)
        cin_out = pooled @ self.params["cin.out"]

        # DNN tower over [flattened embeddings, dense].
        dnn_input = np.concatenate([embeddings.reshape(n, -1), batch.dense], axis=1)
        dnn_out = self.dnn.forward(dnn_input).reshape(-1)

        logits = linear + cin_out + dnn_out
        self._cache = {
            "embeddings": embeddings,
            "pairwise": pairwise,
            "pooled": pooled,
        }
        return logits

    # -- backward ----------------------------------------------------------------
    def backward(self, batch: Batch, grad_logits: np.ndarray) -> Gradients:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if batch.categorical is None:
            raise ValueError("XDeepFMLite requires categorical features")
        grad_logits = np.asarray(grad_logits, dtype=np.float64).reshape(-1)
        n = len(batch)
        if grad_logits.shape[0] != n:
            raise ValueError("grad_logits size does not match the batch")

        embeddings = self._cache["embeddings"]
        pairwise = self._cache["pairwise"]
        pooled = self._cache["pooled"]
        grads: Gradients = {}
        grad_embeddings = np.zeros_like(embeddings)

        # Linear term gradients.
        grads["bias"] = np.array([grad_logits.sum()])
        grads["lin.dense"] = batch.dense.T @ grad_logits
        for j in range(self.num_fields):
            grad_lin = np.zeros_like(self.params[f"lin.{j}"])
            np.add.at(grad_lin, batch.categorical[:, j], grad_logits)
            grads[f"lin.{j}"] = grad_lin

        # CIN gradients.
        grads["cin.out"] = pooled.T @ grad_logits
        grad_pooled = grad_logits[:, None] * self.params["cin.out"][None, :]  # (n, H)
        grad_maps = np.repeat(grad_pooled[:, :, None], self.embedding_dim, axis=2)  # (n, H, d)
        grads["cin.w"] = np.einsum("nhd,nijd->hij", grad_maps, pairwise)
        grad_pairwise = np.einsum("nhd,hij->nijd", grad_maps, self.params["cin.w"])
        # pairwise[i, j] = emb_i * emb_j  =>  d emb_i += d pairwise[i, j] * emb_j (sum over j)
        grad_embeddings += np.einsum("nijd,njd->nid", grad_pairwise, embeddings)
        grad_embeddings += np.einsum("nijd,nid->njd", grad_pairwise, embeddings)

        # DNN gradients.
        dnn_grads, grad_dnn_input = self.dnn.backward(grad_logits.reshape(-1, 1))
        grads.update(dnn_grads)
        emb_part = grad_dnn_input[:, : self.num_fields * self.embedding_dim]
        grad_embeddings += emb_part.reshape(n, self.num_fields, self.embedding_dim)

        # Scatter embedding gradients back into the tables.
        for j in range(self.num_fields):
            table_grad = np.zeros_like(self.params[f"emb.{j}"])
            np.add.at(table_grad, batch.categorical[:, j], grad_embeddings[:, j, :])
            grads[f"emb.{j}"] = table_grad

        return grads

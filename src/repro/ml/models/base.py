"""Base class for the NumPy models used by the reproduction.

Models expose their parameters as a flat dictionary (name -> ndarray), which
is the representation that gets sharded across the simulated parameter
servers, averaged by the AllReduce simulator, and saved by the checkpoint
subsystem.  The training contract is ``forward`` -> cached activations ->
``backward`` from the logit gradient, plus a convenience
:meth:`Model.loss_and_gradients` wrapper used by workers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..losses import bce_with_logits, sigmoid
from ..data.dataset import Batch

__all__ = ["Model", "Gradients"]

Gradients = Dict[str, np.ndarray]


class Model:
    """Base class: parameter bookkeeping, state dict, loss helper."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}

    # -- parameters ---------------------------------------------------------
    def parameters(self) -> Dict[str, np.ndarray]:
        """The live parameter dictionary (mutated in place by optimizers)."""
        return self.params

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.params.values()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Deep copy of all parameters (for checkpoints)."""
        return {name: value.copy() for name, value in self.params.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters from a state dict saved by :meth:`state_dict`."""
        missing = set(self.params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name in self.params:
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != self.params[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {value.shape} vs {self.params[name].shape}"
                )
            self.params[name][...] = value

    def zero_like_gradients(self) -> Gradients:
        """A gradient dict of zeros matching the parameter shapes."""
        return {name: np.zeros_like(value) for name, value in self.params.items()}

    # -- compute -------------------------------------------------------------
    def forward(self, batch: Batch) -> np.ndarray:
        """Compute logits for a batch; caches activations for backward."""
        raise NotImplementedError

    def backward(self, batch: Batch, grad_logits: np.ndarray) -> Gradients:
        """Gradients of the loss w.r.t. every parameter, given d(loss)/d(logits)."""
        raise NotImplementedError

    def loss_and_gradients(
        self,
        batch: Batch,
        loss_fn: Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]] = bce_with_logits,
    ) -> Tuple[float, Gradients]:
        """Forward + loss + backward in one call (what a worker does per batch)."""
        logits = self.forward(batch)
        loss, grad_logits = loss_fn(logits, batch.labels)
        grads = self.backward(batch, grad_logits)
        return loss, grads

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Predicted probability of the positive class."""
        return sigmoid(self.forward(batch))

"""Statistical evaluation metrics.

The paper assesses statistical performance with AUC (area under the ROC
curve); the data-integrity experiments check that the AUC of a run with
failovers matches the AUC of a clean run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "accuracy", "log_loss"]


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-statistic formulation.

    Equivalent to the probability that a random positive sample scores higher
    than a random negative one.  Ties receive half credit.
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = int(labels.shape[0] - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires at least one positive and one negative sample")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    n = len(sorted_scores)
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = ranks[positives].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def accuracy(labels: np.ndarray, scores: np.ndarray, threshold: float = 0.5) -> float:
    """Binary classification accuracy at a score threshold."""
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    if labels.size == 0:
        raise ValueError("empty inputs")
    predictions = (scores >= threshold).astype(np.float64)
    return float(np.mean(predictions == labels))


def log_loss(labels: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Binary cross entropy on probabilities (not logits)."""
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64).reshape(-1), eps, 1 - eps)
    if labels.shape != probabilities.shape:
        raise ValueError("labels and probabilities must have the same shape")
    if labels.size == 0:
        raise ValueError("empty inputs")
    return float(-np.mean(labels * np.log(probabilities) + (1 - labels) * np.log(1 - probabilities)))

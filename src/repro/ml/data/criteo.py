"""Synthetic Criteo-like click-log generator.

The paper trains XDeepFM on the public Criteo dataset (45 million click
records with 13 numeric and 26 categorical features).  That dataset is not
available offline, so this module generates a synthetic click log with the
same schema shape at a configurable scale: dense features drawn from
log-normal-like distributions, categorical fields with power-law vocabulary
usage, and labels produced by a hidden ground-truth model (linear + pairwise
interactions) so that a CTR model can actually learn signal and reach a
meaningful AUC — which is what the data-integrity experiment checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .dataset import TabularDataset

__all__ = ["CriteoConfig", "make_criteo_like"]


@dataclass
class CriteoConfig:
    """Configuration for the synthetic Criteo-like generator.

    The defaults are miniature (tests and examples should run in seconds);
    paper-scale runs simply raise ``num_samples``.
    """

    num_samples: int = 20_000
    num_dense: int = 13
    field_cardinalities: Sequence[int] = (100, 80, 60, 40, 30, 20, 12, 8)
    positive_rate: float = 0.25
    noise: float = 1.0
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.num_dense < 0:
            raise ValueError("num_dense must be non-negative")
        if not self.field_cardinalities:
            raise ValueError("at least one categorical field is required")
        if not 0.0 < self.positive_rate < 1.0:
            raise ValueError("positive_rate must lie strictly between 0 and 1")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")


def _powerlaw_choices(rng: np.random.Generator, cardinality: int, size: int) -> np.ndarray:
    """Draw categorical values with a power-law (Zipf-like) popularity profile."""
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    return rng.choice(cardinality, size=size, p=weights)


def make_criteo_like(config: Optional[CriteoConfig] = None) -> TabularDataset:
    """Generate a synthetic Criteo-like dataset.

    The label model is ``logit = w·dense + sum_f u_f[value_f] + pairwise`` with
    Gaussian noise; the intercept is calibrated so the empirical positive rate
    matches ``config.positive_rate``.
    """
    cfg = config if config is not None else CriteoConfig()
    rng = np.random.default_rng(cfg.seed)

    dense = rng.lognormal(mean=0.0, sigma=1.0, size=(cfg.num_samples, cfg.num_dense))
    dense = np.log1p(dense)  # the standard Criteo preprocessing transform

    num_fields = len(cfg.field_cardinalities)
    categorical = np.zeros((cfg.num_samples, num_fields), dtype=np.int64)
    for j, cardinality in enumerate(cfg.field_cardinalities):
        categorical[:, j] = _powerlaw_choices(rng, int(cardinality), cfg.num_samples)

    # Hidden ground-truth model.
    dense_weights = rng.normal(0.0, 0.5, size=cfg.num_dense)
    field_effects: List[np.ndarray] = [
        rng.normal(0.0, 1.0, size=int(cardinality)) for cardinality in cfg.field_cardinalities
    ]
    logits = dense @ dense_weights
    for j in range(num_fields):
        logits = logits + field_effects[j][categorical[:, j]]
    # A couple of pairwise interactions so factorization-style models have an edge.
    if num_fields >= 2:
        interaction = rng.normal(
            0.0, 0.8, size=(int(cfg.field_cardinalities[0]), int(cfg.field_cardinalities[1]))
        )
        logits = logits + interaction[categorical[:, 0], categorical[:, 1]]
    logits = logits + rng.normal(0.0, cfg.noise, size=cfg.num_samples)

    # Calibrate the intercept so the positive rate matches the target.
    intercept = float(np.quantile(logits, 1.0 - cfg.positive_rate))
    probabilities = 1.0 / (1.0 + np.exp(-(logits - intercept)))
    labels = (rng.random(cfg.num_samples) < probabilities).astype(np.float64)

    return TabularDataset(
        dense=dense,
        labels=labels,
        categorical=categorical,
        field_cardinalities=[int(c) for c in cfg.field_cardinalities],
        name="criteo-like",
    )

"""Synthetic production-like (fraud / risk-control) click-log generator.

The paper motivates the "at-least-once" data-integrity requirement with
financial applications: fraud detection datasets are extremely imbalanced, so
losing the rare positive samples is unacceptable.  This generator produces an
imbalanced workload (sub-percent positive rate by default) used by the
data-integrity and production A/B experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .dataset import TabularDataset

__all__ = ["ProductionConfig", "make_production_like"]


@dataclass
class ProductionConfig:
    """Configuration of the synthetic Ant-production-like dataset."""

    num_samples: int = 50_000
    num_dense: int = 32
    field_cardinalities: Sequence[int] = (500, 200, 100, 50, 20)
    positive_rate: float = 0.02
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if not 0.0 < self.positive_rate < 0.5:
            raise ValueError("positive_rate must lie in (0, 0.5) for an imbalanced workload")


def make_production_like(config: Optional[ProductionConfig] = None) -> TabularDataset:
    """Generate a highly imbalanced transaction-risk-style dataset.

    Positive (fraud) samples come from a shifted feature distribution, so a
    model trained on the full dataset separates the classes well, while losing
    even a small fraction of positives measurably hurts AUC — which is exactly
    the property the at-least-once experiments rely on.
    """
    cfg = config if config is not None else ProductionConfig()
    rng = np.random.default_rng(cfg.seed)

    n_pos = max(1, int(round(cfg.num_samples * cfg.positive_rate)))
    n_neg = cfg.num_samples - n_pos

    neg_dense = rng.normal(0.0, 1.0, size=(n_neg, cfg.num_dense))
    pos_shift = rng.normal(1.2, 0.2, size=cfg.num_dense) * rng.choice([-1.0, 1.0], cfg.num_dense)
    pos_dense = rng.normal(0.0, 1.0, size=(n_pos, cfg.num_dense)) + pos_shift

    dense = np.vstack([neg_dense, pos_dense])
    labels = np.concatenate([np.zeros(n_neg), np.ones(n_pos)])

    num_fields = len(cfg.field_cardinalities)
    categorical = np.zeros((cfg.num_samples, num_fields), dtype=np.int64)
    for j, cardinality in enumerate(cfg.field_cardinalities):
        categorical[:, j] = rng.integers(0, int(cardinality), size=cfg.num_samples)
    # Fraudulent transactions concentrate on a small set of risky categories.
    risky = rng.integers(0, int(cfg.field_cardinalities[0]) // 10 + 1, size=n_pos)
    categorical[n_neg:, 0] = risky

    order = rng.permutation(cfg.num_samples)
    return TabularDataset(
        dense=dense[order],
        labels=labels[order],
        categorical=categorical[order],
        field_cardinalities=[int(c) for c in cfg.field_cardinalities],
        name="production-like",
    )

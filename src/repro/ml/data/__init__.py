"""Synthetic datasets and workload descriptors."""

from .criteo import CriteoConfig, make_criteo_like
from .dataset import Batch, TabularDataset
from .imagenet import ImageWorkload, imagenet_epoch, mini_imagenet_epoch
from .production import ProductionConfig, make_production_like

__all__ = [
    "Batch",
    "CriteoConfig",
    "ImageWorkload",
    "ProductionConfig",
    "TabularDataset",
    "imagenet_epoch",
    "make_criteo_like",
    "make_production_like",
    "mini_imagenet_epoch",
]

"""In-memory tabular datasets and batches.

The Stateful DDS assigns work as *(offset, length)* ranges over a sample
store; workers map those ranges back to actual rows.  :class:`TabularDataset`
plays the role of the distributed storage in the paper's Fig. 5: it holds the
dense features, categorical features and labels for the synthetic Criteo-like
and production-like workloads and can materialise any contiguous range of
rows as a :class:`Batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["Batch", "TabularDataset"]


@dataclass
class Batch:
    """One mini-batch of samples.

    Attributes
    ----------
    dense:
        Dense (numeric) features of shape ``(n, num_dense)``.
    categorical:
        Integer categorical features of shape ``(n, num_fields)`` or ``None``
        for purely dense models.
    labels:
        Binary labels of shape ``(n,)``.
    indices:
        Global sample indices of the rows in this batch, used by the data
        integrity machinery to verify at-least-once / at-most-once semantics.
    """

    dense: np.ndarray
    labels: np.ndarray
    categorical: Optional[np.ndarray] = None
    indices: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.dense = np.asarray(self.dense, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.float64).reshape(-1)
        if self.dense.ndim != 2:
            raise ValueError("dense features must be 2-D")
        if self.dense.shape[0] != self.labels.shape[0]:
            raise ValueError("dense features and labels disagree on batch size")
        if self.categorical is not None:
            self.categorical = np.asarray(self.categorical, dtype=np.int64)
            if self.categorical.shape[0] != self.labels.shape[0]:
                raise ValueError("categorical features and labels disagree on batch size")
        if self.indices is not None:
            self.indices = np.asarray(self.indices, dtype=np.int64).reshape(-1)
            if self.indices.shape[0] != self.labels.shape[0]:
                raise ValueError("indices and labels disagree on batch size")

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def size(self) -> int:
        """Number of samples in the batch."""
        return len(self)


class TabularDataset:
    """An indexable store of tabular samples.

    Parameters
    ----------
    dense:
        ``(N, num_dense)`` numeric features.
    labels:
        ``(N,)`` binary labels.
    categorical:
        Optional ``(N, num_fields)`` integer categorical features.
    field_cardinalities:
        Vocabulary size of each categorical field (needed by embedding models).
    name:
        Dataset name used in reports.
    """

    def __init__(
        self,
        dense: np.ndarray,
        labels: np.ndarray,
        categorical: Optional[np.ndarray] = None,
        field_cardinalities: Optional[Sequence[int]] = None,
        name: str = "dataset",
    ) -> None:
        self.dense = np.asarray(dense, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        self.categorical = None if categorical is None else np.asarray(categorical, dtype=np.int64)
        self.name = name
        if self.dense.ndim != 2:
            raise ValueError("dense features must be 2-D")
        if self.dense.shape[0] != self.labels.shape[0]:
            raise ValueError("dense features and labels disagree on the number of samples")
        if self.categorical is not None and self.categorical.shape[0] != self.labels.shape[0]:
            raise ValueError("categorical features and labels disagree on the number of samples")
        if field_cardinalities is not None:
            self.field_cardinalities: Optional[List[int]] = [int(c) for c in field_cardinalities]
        elif self.categorical is not None:
            self.field_cardinalities = [int(self.categorical[:, j].max()) + 1
                                        for j in range(self.categorical.shape[1])]
        else:
            self.field_cardinalities = None

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_samples(self) -> int:
        """Total number of samples."""
        return len(self)

    @property
    def num_dense(self) -> int:
        """Number of dense features."""
        return int(self.dense.shape[1])

    @property
    def num_fields(self) -> int:
        """Number of categorical fields (0 for purely dense datasets)."""
        return 0 if self.categorical is None else int(self.categorical.shape[1])

    def read_range(self, offset: int, length: int) -> Batch:
        """Materialise the contiguous row range ``[offset, offset + length)``.

        This is the worker-side mapping from a DDS shard (offset, length) to
        actual input data.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if offset + length > len(self):
            raise ValueError(
                f"range [{offset}, {offset + length}) exceeds dataset size {len(self)}"
            )
        indices = np.arange(offset, offset + length, dtype=np.int64)
        return self.read_indices(indices)

    def read_indices(self, indices: np.ndarray) -> Batch:
        """Materialise an arbitrary set of rows (used after shuffling)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise ValueError("indices out of range")
        categorical = None if self.categorical is None else self.categorical[indices]
        return Batch(
            dense=self.dense[indices],
            labels=self.labels[indices],
            categorical=categorical,
            indices=indices,
        )

    def iter_batches(self, batch_size: int, shuffle: bool = False,
                     rng: Optional[np.random.Generator] = None) -> Iterator[Batch]:
        """Iterate over the dataset in order (or shuffled) with a fixed batch size."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self), dtype=np.int64)
        if shuffle:
            generator = rng if rng is not None else np.random.default_rng(0)
            generator.shuffle(order)
        for start in range(0, len(self), batch_size):
            yield self.read_indices(order[start : start + batch_size])

    def split(self, train_fraction: float, rng: Optional[np.random.Generator] = None
              ) -> "tuple[TabularDataset, TabularDataset]":
        """Split into train/test datasets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must lie strictly between 0 and 1")
        generator = rng if rng is not None else np.random.default_rng(0)
        order = np.arange(len(self), dtype=np.int64)
        generator.shuffle(order)
        cut = int(round(train_fraction * len(self)))
        cut = min(max(cut, 1), len(self) - 1)
        first, second = order[:cut], order[cut:]
        return self._subset(first, f"{self.name}-train"), self._subset(second, f"{self.name}-test")

    def _subset(self, indices: np.ndarray, name: str) -> "TabularDataset":
        categorical = None if self.categorical is None else self.categorical[indices]
        return TabularDataset(
            dense=self.dense[indices],
            labels=self.labels[indices],
            categorical=categorical,
            field_cardinalities=self.field_cardinalities,
            name=name,
        )

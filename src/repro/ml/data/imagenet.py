"""ImageNet-scale workload descriptors.

The GPU experiments (paper Fig. 15) train ResNet-101 and MobileNets on one
epoch of ImageNet.  Reproducing their *timing* behaviour does not require
pixels — only the number of samples and the per-sample compute/communication
cost of each model, which the AllReduce simulator consumes.  This module
provides those workload descriptors at paper scale and at miniature scale for
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ImageWorkload", "imagenet_epoch", "mini_imagenet_epoch"]


@dataclass(frozen=True)
class ImageWorkload:
    """A vision training workload measured in samples, not bytes.

    Attributes
    ----------
    name:
        Workload name used in reports (``"imagenet"``).
    num_samples:
        Samples per epoch.
    epochs:
        Number of epochs to train.
    image_side:
        Input resolution (reporting only).
    """

    name: str
    num_samples: int
    epochs: int = 1
    image_side: int = 224

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")

    @property
    def total_samples(self) -> int:
        """Total samples processed over the whole run."""
        return self.num_samples * self.epochs


def imagenet_epoch(epochs: int = 1) -> ImageWorkload:
    """The paper's ImageNet workload: 1.28 million images per epoch."""
    return ImageWorkload(name="imagenet", num_samples=1_281_167, epochs=epochs)


def mini_imagenet_epoch(num_samples: int = 20_000, epochs: int = 1) -> ImageWorkload:
    """A scaled-down ImageNet-shaped workload for tests and quick benches."""
    return ImageWorkload(name="mini-imagenet", num_samples=num_samples, epochs=epochs)

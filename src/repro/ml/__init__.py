"""NumPy mini deep-learning substrate.

Provides everything the simulated training architectures need from an ML
stack: trainable models with explicit gradients (logistic regression, MLP,
XDeepFM-lite), optimizers with checkpointable state, losses, the AUC metric,
synthetic datasets matching the paper's workloads, and FLOP-level cost
profiles for the vision models used in the GPU experiments.
"""

from .data import (
    Batch,
    CriteoConfig,
    ImageWorkload,
    ProductionConfig,
    TabularDataset,
    imagenet_epoch,
    make_criteo_like,
    make_production_like,
    mini_imagenet_epoch,
)
from .losses import bce_with_logits, mse, sigmoid, softmax_cross_entropy
from .metrics import accuracy, auc, log_loss
from .models import (
    INHOUSE_RANKING,
    MLP,
    MOBILENET_V1,
    MODEL_COSTS,
    RESNET101,
    XDEEPFM_CRITEO,
    DenseStack,
    Gradients,
    LogisticRegression,
    Model,
    ModelCostProfile,
    XDeepFMLite,
)
from .optim import SGD, Adagrad, Adam, Optimizer, scale_learning_rate

__all__ = [
    "Adagrad",
    "Adam",
    "Batch",
    "CriteoConfig",
    "DenseStack",
    "Gradients",
    "INHOUSE_RANKING",
    "ImageWorkload",
    "LogisticRegression",
    "MLP",
    "MOBILENET_V1",
    "MODEL_COSTS",
    "Model",
    "ModelCostProfile",
    "Optimizer",
    "ProductionConfig",
    "RESNET101",
    "SGD",
    "TabularDataset",
    "XDEEPFM_CRITEO",
    "XDeepFMLite",
    "accuracy",
    "auc",
    "bce_with_logits",
    "imagenet_epoch",
    "log_loss",
    "make_criteo_like",
    "make_production_like",
    "mini_imagenet_epoch",
    "mse",
    "scale_learning_rate",
    "sigmoid",
    "softmax_cross_entropy",
]

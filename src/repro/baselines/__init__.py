"""Baseline straggler-mitigation methods and the PS method registry."""

from .registry import PS_METHODS, PSMethod, asp_methods, bsp_methods, get_method
from .solutions import AdjustLRSolution, LBBSPSolution, NoMitigationSolution

__all__ = [
    "AdjustLRSolution",
    "LBBSPSolution",
    "NoMitigationSolution",
    "PSMethod",
    "PS_METHODS",
    "asp_methods",
    "bsp_methods",
    "get_method",
]

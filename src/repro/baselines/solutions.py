"""Baseline mitigation policies expressed as AntDT solutions.

Expressing the baselines through the same :class:`~repro.core.solutions.base.Solution`
interface demonstrates the extensibility claim of the paper (any mitigation
method can be plugged into the framework, reusing the DDS and the fault
tolerance machinery) and keeps the experiment runner uniform.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.actions import Action, AdjustBatchSize, AdjustLearningRate, NoneAction
from ..core.controller import ControlContext
from ..core.detection import detect_stragglers
from ..core.solutions.base import Solution
from ..core.solvers import solve_batch_sizes

__all__ = ["NoMitigationSolution", "LBBSPSolution", "AdjustLRSolution"]


class NoMitigationSolution(Solution):
    """Does nothing — the native BSP/ASP baselines."""

    name = "none"

    def decide(self, context: ControlContext) -> List[Action]:
        return [NoneAction()]


class LBBSPSolution(Solution):
    """LB-BSP: continuously rebalance batch sizes proportional to throughput.

    This is the batch-size updating algorithm of LB-BSP (Chen et al., SoCC'20)
    restated on top of the AntDT framework: every control interval the
    per-worker batch sizes are recomputed from the short-window throughputs.
    It never takes KILL_RESTART, which is exactly why it cannot help against
    persistent or server-side stragglers.
    """

    name = "lb-bsp"

    def __init__(self, rebalance_threshold: float = 0.05) -> None:
        if rebalance_threshold < 0:
            raise ValueError("rebalance_threshold must be non-negative")
        self.rebalance_threshold = rebalance_threshold
        self._last: Optional[Dict[str, int]] = None

    def reset(self) -> None:
        self._last = None

    def decide(self, context: ControlContext) -> List[Action]:
        throughputs = {w: v for w, v in context.worker_throughputs.items()
                       if w in context.active_workers and v > 0}
        if not throughputs or len(throughputs) < len(context.active_workers):
            return [NoneAction()]
        sizes = solve_batch_sizes(throughputs, global_batch=context.global_batch_size,
                                  min_batch=context.config.min_batch_size)
        if self._last is not None:
            max_change = max(
                abs(sizes[w] - self._last.get(w, sizes[w])) / max(1, self._last.get(w, sizes[w]))
                for w in sizes
            )
            if max_change < self.rebalance_threshold:
                return [NoneAction()]
        self._last = dict(sizes)
        return [AdjustBatchSize(batch_sizes=sizes)]


class AdjustLRSolution(Solution):
    """ADJUST_LR: penalise stragglers' learning rates (optimisation baseline).

    The paper excludes this method from the timing comparison because it acts
    on statistical efficiency rather than wall-clock time; it is provided here
    for completeness and is exercised by the unit tests and one ablation.
    """

    name = "adjust-lr"

    def __init__(self, penalty: float = 0.5) -> None:
        if not 0 < penalty <= 1.0:
            raise ValueError("penalty must lie in (0, 1]")
        self.penalty = penalty
        self._penalised: Dict[str, int] = {}

    def reset(self) -> None:
        self._penalised = {}

    def decide(self, context: ControlContext) -> List[Action]:
        bpts = {w: bpt for w, bpt in context.worker_short_bpts.items()
                if w in context.active_workers}
        if not bpts:
            return [NoneAction()]
        report = detect_stragglers(bpts, context.config.slowness_ratio)
        new = [w for w in report.stragglers if w not in self._penalised]
        if not new:
            return [NoneAction()]
        for worker in new:
            self._penalised[worker] = self._penalised.get(worker, 0) + 1
        return [AdjustLearningRate(factors={worker: self.penalty for worker in new})]

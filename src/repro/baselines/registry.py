"""Registry of the Parameter-Server training methods compared in the paper.

Every method is a declarative recipe: which consistency model it runs under,
which data allocator it uses, which (if any) mitigation solution drives the
Controller, and how many backup workers it tolerates.  The experiment runner
turns a recipe plus a cluster/workload into a runnable
:class:`~repro.psarch.job.PSTrainingJob`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.config import ConsistencyModel
from ..core.solutions import AntDTND, Solution
from .solutions import LBBSPSolution, NoMitigationSolution

__all__ = ["PSMethod", "PS_METHODS", "bsp_methods", "asp_methods", "get_method"]


@dataclass(frozen=True)
class PSMethod:
    """A named training method (baseline or AntDT solution)."""

    name: str
    consistency: ConsistencyModel
    allocator: str  # "dds" or "static"
    solution_factory: Optional[Callable[[], Solution]] = None
    backup_workers: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.allocator not in ("dds", "static"):
            raise ValueError("allocator must be 'dds' or 'static'")
        if self.backup_workers < 0:
            raise ValueError("backup_workers must be non-negative")

    def make_solution(self) -> Optional[Solution]:
        """Instantiate a fresh solution object (or None for native training)."""
        if self.solution_factory is None:
            return None
        return self.solution_factory()


def _antdt_nd() -> Solution:
    return AntDTND()


def _antdt_nd_asp() -> Solution:
    # In ASP training AntDT-ND only takes KILL_RESTART (paper §VII-A.3).
    return AntDTND(enable_adjust_bs=False)


PS_METHODS: Dict[str, PSMethod] = {
    "bsp": PSMethod(
        name="bsp",
        consistency=ConsistencyModel.BSP,
        allocator="dds",
        solution_factory=None,
        description="Native BSP training (TensorFlow PS baseline).",
    ),
    "backup-workers": PSMethod(
        name="backup-workers",
        consistency=ConsistencyModel.BSP,
        allocator="dds",
        solution_factory=None,
        backup_workers=1,
        description="Sync-OPT backup workers: drop the slowest gradient each iteration.",
    ),
    "lb-bsp": PSMethod(
        name="lb-bsp",
        consistency=ConsistencyModel.BSP,
        allocator="dds",
        solution_factory=LBBSPSolution,
        description="LB-BSP batch-size rebalancing (load-balancing baseline).",
    ),
    "antdt-nd": PSMethod(
        name="antdt-nd",
        consistency=ConsistencyModel.BSP,
        allocator="dds",
        solution_factory=_antdt_nd,
        description="AntDT-ND: ADJUST_BS for transient and KILL_RESTART for persistent stragglers.",
    ),
    "asp": PSMethod(
        name="asp",
        consistency=ConsistencyModel.ASP,
        allocator="static",
        solution_factory=None,
        description="Native ASP training with an even data partition.",
    ),
    "asp-dds": PSMethod(
        name="asp-dds",
        consistency=ConsistencyModel.ASP,
        allocator="dds",
        solution_factory=None,
        description="ASP with the Stateful DDS as data allocation.",
    ),
    "antdt-nd-asp": PSMethod(
        name="antdt-nd-asp",
        consistency=ConsistencyModel.ASP,
        allocator="dds",
        solution_factory=_antdt_nd_asp,
        description="AntDT-ND in ASP mode (KILL_RESTART only, on top of the DDS).",
    ),
}


def bsp_methods() -> List[PSMethod]:
    """The BSP-family methods compared in Fig. 10 / Fig. 19."""
    return [PS_METHODS[name] for name in ("antdt-nd", "bsp", "lb-bsp", "backup-workers")]


def asp_methods() -> List[PSMethod]:
    """The ASP-family methods compared in Fig. 11 / Fig. 19."""
    return [PS_METHODS[name] for name in ("antdt-nd-asp", "asp-dds", "asp")]


def get_method(name: str) -> PSMethod:
    """Look up a method recipe by name."""
    try:
        return PS_METHODS[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; available: {sorted(PS_METHODS)}"
        ) from None

"""Data allocation: the Stateful Dynamic Data Sharding service and baselines.

Two allocators implement the same :class:`DataAllocator` interface so that
every training architecture (PS BSP/ASP, AllReduce) and every straggler
mitigation method can swap them freely:

* :class:`StatefulDDS` — the paper's Stateful Dynamic Data Sharding service.
  The dataset is split into ``K = ceil(N / (B * M))`` shards of ``B * M``
  samples; shards live in a global queue with TODO/DOING/DONE states.  Fast
  workers naturally consume more shards; on failover the unfinished part of a
  worker's DOING shard goes back into the queue, which yields the
  "at-least-once" guarantee.
* :class:`StaticPartition` — the classic even partition used by the native
  ASP baseline: every worker owns a fixed ``N / n`` slice, so the job finishes
  only when the slowest worker finishes its slice.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from .config import IntegritySemantics
from .shard import SampleRange, Shard, ShardState
from .shuffler import ShardShuffler

__all__ = ["DataAllocator", "StatefulDDS", "StaticPartition"]


class DataAllocator:
    """Interface between the data-allocation service and the workers.

    The worker-facing protocol is deliberately tiny (the paper's point is
    that the framework hides data allocation from the mitigation methods):

    * :meth:`next_range` — give me up to ``max_samples`` samples to process.
    * :meth:`mark_done` — the servers accepted the gradients of this range.
    * :meth:`return_range` — the gradients of this range were dropped
      (backup workers) and the samples must be reprocessed.
    * :meth:`on_worker_failover` — the worker died; requeue its in-flight work.
    """

    #: Wall-clock cost charged to the worker for one allocator round trip.
    op_cost_s: float = 0.0
    #: Cost of the most recent allocator call (0 when it was a local operation).
    last_op_cost_s: float = 0.0

    def register_worker(self, worker: str) -> None:
        """Declare a worker before it requests data (optional for DDS)."""

    def next_range(self, worker: str, max_samples: int) -> Optional[SampleRange]:
        """Return the next range for ``worker`` or None when no data is available."""
        raise NotImplementedError

    def mark_done(self, worker: str, sample_range: SampleRange) -> None:
        """Confirm that the range's gradients were accepted by the servers."""
        raise NotImplementedError

    def return_range(self, worker: str, sample_range: SampleRange) -> None:
        """Give back a dispatched range whose gradients were dropped."""
        raise NotImplementedError

    def on_worker_failover(self, worker: str) -> int:
        """Requeue all in-flight work of ``worker``; returns samples requeued."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """True when every sample of every epoch has been confirmed."""
        raise NotImplementedError

    @property
    def has_assignable_work(self) -> bool:
        """True when a call to :meth:`next_range` could currently return data."""
        raise NotImplementedError

    def consumed_counts(self) -> Dict[str, int]:
        """Samples confirmed per worker (paper Fig. 3 / Fig. 16)."""
        raise NotImplementedError

    @property
    def total_overhead_s(self) -> float:
        """Cumulative wall-clock overhead charged for allocator round trips."""
        return 0.0


class StatefulDDS(DataAllocator):
    """The Stateful Dynamic Data Sharding service.

    Parameters
    ----------
    num_samples:
        Samples per epoch (``N``).
    global_batch_size:
        The fixed global batch size ``B``.
    batches_per_shard:
        Shard granularity ``M``; each shard covers ``B * M`` samples.
    epochs:
        Number of passes over the dataset.
    shuffler:
        Two-level shard shuffler; ``None`` disables shuffling.
    op_cost_s:
        Wall-clock cost of one DDS round trip (shard fetch or state report).
    integrity:
        At-least-once (default) or at-most-once semantics.  At-most-once
        requires ``batches_per_shard == 1``.
    track_coverage:
        Keep a per-sample counter of how many times each sample was confirmed
        (used by the data-integrity tests; costs ``N`` ints of memory).
    samples_per_shard:
        Optional override of the shard length.  By default a shard covers
        ``global_batch_size * batches_per_shard`` samples as in the paper;
        scaled-down experiments may pass a smaller value so that the DDS keeps
        a useful assignment granularity despite the reduced iteration count.
    """

    def __init__(
        self,
        num_samples: int,
        global_batch_size: int,
        batches_per_shard: int = 100,
        epochs: int = 1,
        shuffler: Optional[ShardShuffler] = None,
        op_cost_s: float = 0.005,
        integrity: IntegritySemantics = IntegritySemantics.AT_LEAST_ONCE,
        track_coverage: bool = True,
        samples_per_shard: Optional[int] = None,
    ) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if batches_per_shard <= 0:
            raise ValueError("batches_per_shard must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if op_cost_s < 0:
            raise ValueError("op_cost_s must be non-negative")
        if integrity is IntegritySemantics.AT_MOST_ONCE and batches_per_shard != 1:
            raise ValueError("at-most-once semantics requires batches_per_shard == 1")

        self.num_samples = int(num_samples)
        self.global_batch_size = int(global_batch_size)
        self.batches_per_shard = int(batches_per_shard)
        self.epochs = int(epochs)
        self.shuffler = shuffler if shuffler is not None else ShardShuffler(seed=0)
        self.op_cost_s = float(op_cost_s)
        self.integrity = integrity

        if samples_per_shard is not None and samples_per_shard <= 0:
            raise ValueError("samples_per_shard override must be positive")
        self.samples_per_shard = (
            int(samples_per_shard)
            if samples_per_shard is not None
            else self.global_batch_size * self.batches_per_shard
        )
        self.shards_per_epoch = -(-self.num_samples // self.samples_per_shard)  # ceil

        self._shards: Dict[int, Shard] = {}
        self._queue: Deque[int] = deque()
        self._current_epoch = 0
        self._done_shards = 0
        self._consumed: Dict[str, int] = {}
        self._shards_taken: Dict[str, int] = {}
        self._current_shard: Dict[str, Optional[int]] = {}
        self._owned_shards: Dict[str, set] = {}
        self._dispatched: Dict[int, int] = {}
        self._outstanding: Dict[str, List[SampleRange]] = {}
        self._total_overhead = 0.0
        self._coverage: Optional[np.ndarray] = (
            np.zeros(self.num_samples * self.epochs, dtype=np.int64) if track_coverage else None
        )
        self._populate_epoch(0)

    # -- construction helpers --------------------------------------------------
    def _populate_epoch(self, epoch: int) -> None:
        shards: List[Shard] = []
        for index in range(self.shards_per_epoch):
            offset = index * self.samples_per_shard
            length = min(self.samples_per_shard, self.num_samples - offset)
            shard_id = epoch * self.shards_per_epoch + index
            shards.append(Shard(shard_id=shard_id, offset=offset, length=length, epoch=epoch))
        for shard in self.shuffler.shuffle_shards_list(shards, epoch):
            self._shards[shard.shard_id] = shard
            self._dispatched[shard.shard_id] = 0
            self._queue.append(shard.shard_id)

    # -- bookkeeping properties -------------------------------------------------
    @property
    def total_shards(self) -> int:
        """Total shards over all epochs (⌈N / (B·M)⌉ per epoch)."""
        return self.shards_per_epoch * self.epochs

    @property
    def done_shards(self) -> int:
        """Number of shards whose every sample has been confirmed."""
        return self._done_shards

    @property
    def total_samples(self) -> int:
        """Samples over all epochs."""
        return self.num_samples * self.epochs

    @property
    def exhausted(self) -> bool:
        return self._done_shards == self.total_shards

    @property
    def has_assignable_work(self) -> bool:
        return bool(self._queue) or any(
            shard_id is not None and self._remaining_to_dispatch(shard_id) > 0
            for shard_id in self._current_shard.values()
        )

    @property
    def total_overhead_s(self) -> float:
        return self._total_overhead

    def state_counts(self) -> Dict[str, int]:
        """Number of shards per state (TODO / DOING / DONE)."""
        counts = {state.value: 0 for state in ShardState}
        for shard in self._shards.values():
            counts[shard.state.value] += 1
        return counts

    def shard_accounting(self) -> Dict[str, int]:
        """Sample-conservation ledger over the DDS's current state.

        Partitions every sample of the workload into exactly one bucket —
        ``confirmed`` (gradients accepted by the servers), ``in_flight``
        (dispatched to a worker, not yet confirmed), ``undispatched`` (queued
        in TODO shards or the unread remainder of DOING shards) and
        ``unpopulated`` (epochs not yet materialised) — and reports whether
        the buckets sum back to the workload (``conserved``).  The invariant
        holds at *any* instant, across failovers and elastic membership
        churn: a requeue moves samples between buckets, it never creates or
        destroys them.  This is the proof obligation behind the elastic
        subsystem's "no sample lost or double-trained" guarantee.
        """
        confirmed = sum(self._consumed.values())
        in_flight = 0
        undispatched = 0
        for shard in self._shards.values():
            if shard.state is ShardState.DOING:
                dispatched = self._dispatched[shard.shard_id]
                in_flight += dispatched - shard.completed
                undispatched += shard.length - dispatched
            elif shard.state is ShardState.TODO:
                undispatched += shard.length
        populated_epochs = self._current_epoch + 1
        unpopulated = self.num_samples * (self.epochs - populated_epochs)
        total = self.total_samples
        balance = total - (confirmed + in_flight + undispatched + unpopulated)
        return {
            "total_samples": total,
            "confirmed": confirmed,
            "in_flight": in_flight,
            "undispatched": undispatched,
            "unpopulated": unpopulated,
            "balance": balance,
            "conserved": balance == 0,
        }

    def consumed_counts(self) -> Dict[str, int]:
        return dict(self._consumed)

    def shards_taken(self) -> Dict[str, int]:
        """Number of distinct shards each worker has fetched (paper Fig. 16)."""
        return dict(self._shards_taken)

    def coverage(self) -> Optional[np.ndarray]:
        """Per-sample confirmation counts across all epochs (None if disabled)."""
        return None if self._coverage is None else self._coverage.copy()

    # -- allocator protocol -------------------------------------------------------
    def register_worker(self, worker: str) -> None:
        if worker in self._outstanding:
            # Already registered; next_range calls this once per fetch.
            return
        self._consumed.setdefault(worker, 0)
        self._shards_taken.setdefault(worker, 0)
        self._current_shard.setdefault(worker, None)
        self._owned_shards.setdefault(worker, set())
        self._outstanding.setdefault(worker, [])

    def _charge(self) -> None:
        self._total_overhead += self.op_cost_s
        self.last_op_cost_s = self.op_cost_s

    def _remaining_to_dispatch(self, shard_id: int) -> int:
        shard = self._shards[shard_id]
        if shard.state is not ShardState.DOING:
            return 0
        return shard.length - self._dispatched[shard_id]

    def _maybe_advance_epoch(self) -> None:
        epoch_done = (self._current_epoch + 1) * self.shards_per_epoch
        if self._done_shards >= epoch_done and self._current_epoch + 1 < self.epochs:
            self._current_epoch += 1
            self._populate_epoch(self._current_epoch)

    def next_range(self, worker: str, max_samples: int) -> Optional[SampleRange]:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.register_worker(worker)
        self.last_op_cost_s = 0.0

        shard_id = self._current_shard.get(worker)
        if shard_id is not None and self._remaining_to_dispatch(shard_id) == 0:
            shard_id = None
            self._current_shard[worker] = None
        if shard_id is None:
            # Fetching a new shard is one DDS round trip; dispensing batches
            # from the worker's current shard is a local operation.
            self._charge()
            shard_id = self._acquire_shard(worker)
            if shard_id is None:
                return None
        shard = self._shards[shard_id]
        start = shard.offset + self._dispatched[shard_id]
        length = min(max_samples, self._remaining_to_dispatch(shard_id))
        self._dispatched[shard_id] += length
        sample_range = SampleRange(offset=start, length=length, epoch=shard.epoch,
                                   shard_id=shard_id)
        self._outstanding[worker].append(sample_range)
        return sample_range

    def _acquire_shard(self, worker: str) -> Optional[int]:
        while self._queue:
            shard_id = self._queue.popleft()
            shard = self._shards[shard_id]
            if shard.state is ShardState.TODO:
                shard.assign(worker)
                self._current_shard[worker] = shard_id
                self._owned_shards.setdefault(worker, set()).add(shard_id)
                self._shards_taken[worker] += 1
                return shard_id
        return None

    def mark_done(self, worker: str, sample_range: SampleRange) -> None:
        self.last_op_cost_s = 0.0
        self._remove_outstanding(worker, sample_range)
        if sample_range.shard_id is None:
            raise ValueError("sample ranges issued by the DDS carry a shard id")
        shard = self._shards[sample_range.shard_id]
        shard.confirm(sample_range.length)
        if shard.state is ShardState.DONE:
            # Reporting a completed shard's state is one DDS round trip.
            self._charge()
        self._consumed[worker] = self._consumed.get(worker, 0) + sample_range.length
        if self._coverage is not None:
            base = sample_range.epoch * self.num_samples
            self._coverage[base + sample_range.offset : base + sample_range.end] += 1
        if shard.state is ShardState.DONE:
            self._done_shards += 1
            if self._current_shard.get(worker) == shard.shard_id:
                self._current_shard[worker] = None
            self._owned_shards.setdefault(worker, set()).discard(shard.shard_id)
            self._maybe_advance_epoch()

    def return_range(self, worker: str, sample_range: SampleRange) -> None:
        """Roll back a dispatched-but-dropped range so it will be re-issued."""
        self._charge()
        self._remove_outstanding(worker, sample_range)
        if sample_range.shard_id is None:
            raise ValueError("sample ranges issued by the DDS carry a shard id")
        shard_id = sample_range.shard_id
        shard = self._shards[shard_id]
        if shard.state is ShardState.DOING and shard.owner == worker:
            # The range is the most recent dispatch of this worker's shard:
            # simply rewind the dispatch cursor.
            self._dispatched[shard_id] -= sample_range.length
            if self._dispatched[shard_id] < shard.completed:
                self._dispatched[shard_id] = shard.completed
        else:
            # The shard changed hands (failover already released it); nothing
            # to rewind — the released tail already covers these samples.
            pass

    def on_worker_failover(self, worker: str) -> int:
        self.register_worker(worker)
        self._charge()
        requeued = 0
        self._outstanding[worker] = []
        for shard_id in sorted(self._owned_shards.get(worker, set())):
            shard = self._shards[shard_id]
            if shard.state is ShardState.DOING and shard.owner == worker:
                requeued += shard.release()
                self._dispatched[shard_id] = 0
                self._queue.append(shard_id)
        self._owned_shards[worker] = set()
        self._current_shard[worker] = None
        return requeued

    def _remove_outstanding(self, worker: str, sample_range: SampleRange) -> None:
        ranges = self._outstanding.setdefault(worker, [])
        for index, candidate in enumerate(ranges):
            if (candidate.offset == sample_range.offset
                    and candidate.length == sample_range.length
                    and candidate.epoch == sample_range.epoch):
                del ranges[index]
                return


class StaticPartition(DataAllocator):
    """Even data partition: every worker owns a fixed slice of the dataset.

    This is the allocation strategy of the native ASP baseline.  There is no
    work stealing: if a worker is slow, its slice simply takes longer, and the
    job completion time is decided by the slowest worker.
    """

    op_cost_s = 0.0

    def __init__(self, num_samples: int, workers: Sequence[str], epochs: int = 1) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if not workers:
            raise ValueError("at least one worker is required")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.num_samples = int(num_samples)
        self.epochs = int(epochs)
        self.workers = list(workers)
        self._bounds: Dict[str, tuple] = {}
        per_worker = num_samples // len(self.workers)
        remainder = num_samples % len(self.workers)
        offset = 0
        for index, worker in enumerate(self.workers):
            length = per_worker + (1 if index < remainder else 0)
            self._bounds[worker] = (offset, offset + length)
            offset += length
        self._epoch: Dict[str, int] = {worker: 0 for worker in self.workers}
        self._cursor: Dict[str, int] = {worker: self._bounds[worker][0] for worker in self.workers}
        self._confirmed: Dict[str, int] = {worker: 0 for worker in self.workers}
        self._consumed: Dict[str, int] = {worker: 0 for worker in self.workers}

    @property
    def total_samples(self) -> int:
        """Samples over all epochs."""
        return self.num_samples * self.epochs

    @property
    def exhausted(self) -> bool:
        return all(self._worker_done(worker) for worker in self.workers)

    @property
    def has_assignable_work(self) -> bool:
        return not self.exhausted

    def _worker_done(self, worker: str) -> bool:
        start, end = self._bounds[worker]
        slice_size = end - start
        return self._consumed[worker] >= slice_size * self.epochs

    def partition_of(self, worker: str) -> tuple:
        """The (start, end) slice owned by a worker."""
        return self._bounds[worker]

    def register_worker(self, worker: str) -> None:
        if worker not in self._bounds:
            raise KeyError(f"worker {worker!r} is not part of the static partition")

    def next_range(self, worker: str, max_samples: int) -> Optional[SampleRange]:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.register_worker(worker)
        start, end = self._bounds[worker]
        if self._worker_done(worker):
            return None
        cursor = self._cursor[worker]
        if cursor >= end:
            # Move to the next epoch of this worker's own slice.
            if self._epoch[worker] + 1 >= self.epochs:
                return None
            self._epoch[worker] += 1
            self._cursor[worker] = start
            cursor = start
        length = min(max_samples, end - cursor)
        self._cursor[worker] = cursor + length
        return SampleRange(offset=cursor, length=length, epoch=self._epoch[worker])

    def mark_done(self, worker: str, sample_range: SampleRange) -> None:
        self._consumed[worker] += sample_range.length

    def return_range(self, worker: str, sample_range: SampleRange) -> None:
        # Rewind the cursor so the samples are re-issued to the same worker.
        if self._epoch[worker] == sample_range.epoch and self._cursor[worker] == sample_range.end:
            self._cursor[worker] = sample_range.offset

    def on_worker_failover(self, worker: str) -> int:
        # The worker re-reads from its last confirmed position after restart.
        start, _end = self._bounds[worker]
        confirmed_in_epoch = self._consumed[worker] - self._epoch[worker] * (
            self._bounds[worker][1] - start
        )
        rewound = self._cursor[worker] - (start + max(confirmed_in_epoch, 0))
        self._cursor[worker] = start + max(confirmed_in_epoch, 0)
        return max(int(rewound), 0)

    def consumed_counts(self) -> Dict[str, int]:
        return dict(self._consumed)

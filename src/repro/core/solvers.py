"""Batch-size optimisation solvers (paper Eq. 3 and Eq. 4).

``ADJUST_BS`` for CPU workers reduces to the min-max problem of Eq. 2/3:
minimise the slowest worker's compute time subject to a fixed global batch.
Because CPU compute time is linear in batch size, the continuous optimum is
simply proportional allocation ``B_i ∝ v_i``; :func:`solve_batch_sizes` adds
integer rounding and lower bounds while keeping the global batch exact.

AntDT-DD (Eq. 4) jointly chooses per-device batch sizes and gradient
accumulation counts for heterogeneous GPU groups, with the batch size bounded
between each device's saturation point and memory limit.
:func:`solve_gradient_accumulation` enumerates the (small) space of
accumulation counts and solves each inner min-max problem by bisection on the
latent variable ``z`` of Eq. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["DeviceGroup", "AccumulationPlan", "solve_batch_sizes", "solve_gradient_accumulation"]


def solve_batch_sizes(
    throughputs: Mapping[str, float],
    global_batch: int,
    min_batch: int = 1,
    max_batch: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Solve Eq. 3: integer batch sizes proportional to worker throughput.

    Parameters
    ----------
    throughputs:
        Estimated samples/second ``v_i`` per worker over the short window.
    global_batch:
        The fixed global batch size ``B``.
    min_batch:
        Lower bound on any per-worker batch size.
    max_batch:
        Optional per-worker upper bounds (e.g. GPU memory limits).

    Returns
    -------
    dict
        Per-worker batch sizes that sum exactly to ``global_batch``.
    """
    if global_batch <= 0:
        raise ValueError("global_batch must be positive")
    if min_batch <= 0:
        raise ValueError("min_batch must be positive")
    workers = sorted(throughputs)
    if not workers:
        raise ValueError("at least one worker is required")
    if any(throughputs[w] <= 0 for w in workers):
        raise ValueError("all throughputs must be positive")
    if min_batch * len(workers) > global_batch:
        raise ValueError(
            f"infeasible: {len(workers)} workers x min_batch {min_batch} exceeds "
            f"global batch {global_batch}"
        )

    total_speed = sum(throughputs[w] for w in workers)
    ideal = {w: global_batch * throughputs[w] / total_speed for w in workers}

    # Clamp to bounds, floor to integers.
    sizes: Dict[str, int] = {}
    for worker in workers:
        upper = max_batch.get(worker, global_batch) if max_batch else global_batch
        sizes[worker] = int(min(max(min_batch, int(ideal[worker])), upper))

    # Repair the sum so it is exactly the global batch.
    def _upper(worker: str) -> int:
        return max_batch.get(worker, global_batch) if max_batch else global_batch

    deficit = global_batch - sum(sizes.values())
    # Distribute surplus to the fastest workers first, remove from the slowest.
    by_speed = sorted(workers, key=lambda w: throughputs[w], reverse=True)
    guard = 0
    while deficit != 0:
        guard += 1
        if guard > 10 * global_batch + 100:
            raise RuntimeError("batch-size repair did not converge")
        progressed = False
        if deficit > 0:
            for worker in by_speed:
                if deficit == 0:
                    break
                if sizes[worker] < _upper(worker):
                    sizes[worker] += 1
                    deficit -= 1
                    progressed = True
        else:
            for worker in reversed(by_speed):
                if deficit == 0:
                    break
                if sizes[worker] > min_batch:
                    sizes[worker] -= 1
                    deficit += 1
                    progressed = True
        if not progressed:
            raise ValueError("bounds make the global batch size infeasible")
    return sizes


@dataclass(frozen=True)
class DeviceGroup:
    """A group of identical devices in a heterogeneous dedicated cluster.

    Attributes
    ----------
    name:
        Group name (``"V100"`` / ``"P100"``).
    count:
        Number of devices ``n_i`` in the group.
    throughput:
        Saturated samples/second ``v_i`` of one device.
    min_batch:
        The saturation point (running smaller batches wastes the device).
    max_batch:
        The memory-bound batch size limitation.
    """

    name: str
    count: int
    throughput: float
    min_batch: int
    max_batch: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        if not 0 < self.min_batch <= self.max_batch:
            raise ValueError("bounds must satisfy 0 < min_batch <= max_batch")


@dataclass(frozen=True)
class AccumulationPlan:
    """Solution of Eq. 4 for one device group."""

    group: str
    batch_size: int
    accumulation: int
    step_time: float

    @property
    def samples_per_sync(self) -> int:
        """Samples one device contributes between synchronisations."""
        return self.batch_size * self.accumulation


def _solve_inner(groups: Sequence[DeviceGroup], accumulation: Sequence[int],
                 global_batch: int) -> Optional[Tuple[Dict[str, int], float]]:
    """For fixed accumulation counts, find batch sizes via bisection on z."""

    def sizes_at(z: float) -> Dict[str, int]:
        result = {}
        for group, c in zip(groups, accumulation):
            ideal = z * group.throughput / c
            result[group.name] = int(min(max(group.min_batch, round(ideal)), group.max_batch))
        return result

    def total(sizes: Dict[str, int]) -> int:
        return sum(group.count * c * sizes[group.name]
                   for group, c in zip(groups, accumulation))

    lower_total = total({g.name: g.min_batch for g in groups})
    upper_total = total({g.name: g.max_batch for g in groups})
    if global_batch < lower_total or global_batch > upper_total:
        return None

    lo, hi = 0.0, max(c * g.max_batch / g.throughput for g, c in zip(groups, accumulation))
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if total(sizes_at(mid)) < global_batch:
            lo = mid
        else:
            hi = mid
    sizes = sizes_at(hi)

    # Integer repair toward the exact global batch, respecting bounds.  Each
    # unit change of group i's batch size changes the total by count * C_i.
    deficit = global_batch - total(sizes)
    order = sorted(range(len(groups)), key=lambda i: groups[i].throughput, reverse=True)
    guard = 0
    while deficit != 0 and guard < 100000:
        guard += 1
        progressed = False
        for index in order:
            group, c = groups[index], accumulation[index]
            step = group.count * c
            if deficit >= step and sizes[group.name] < group.max_batch:
                sizes[group.name] += 1
                deficit -= step
                progressed = True
            elif deficit <= -step and sizes[group.name] > group.min_batch:
                sizes[group.name] -= 1
                deficit += step
                progressed = True
        if not progressed:
            break
    if abs(deficit) > sum(group.count for group in groups) * max(accumulation):
        # Could not get close enough to the target batch with these counts.
        return None

    objective = max(
        c * sizes[group.name] / group.throughput for group, c in zip(groups, accumulation)
    )
    return sizes, objective


def solve_gradient_accumulation(
    groups: Sequence[DeviceGroup],
    global_batch: int,
    min_accumulation: int = 1,
    max_accumulation: int = 5,
) -> List[AccumulationPlan]:
    """Solve Eq. 4: joint batch size + gradient accumulation per device group.

    Enumerates accumulation counts ``C_i`` in ``[min_accumulation,
    max_accumulation]`` for every group (the number of distinct device series
    ``k`` is small in practice — the paper's Cluster-B has two) and solves the
    inner min-max batch-size problem for each combination, returning the plan
    with the smallest synchronisation period ``max_i C_i B_i / v_i``.
    """
    if not groups:
        raise ValueError("at least one device group is required")
    if global_batch <= 0:
        raise ValueError("global_batch must be positive")
    if not 1 <= min_accumulation <= max_accumulation:
        raise ValueError("accumulation bounds must satisfy 1 <= min <= max")

    best: Optional[Tuple[float, Tuple[int, ...], Dict[str, int]]] = None
    counts = list(range(min_accumulation, max_accumulation + 1))

    def enumerate_combos(prefix: List[int], depth: int) -> None:
        nonlocal best
        if depth == len(groups):
            solution = _solve_inner(groups, prefix, global_batch)
            if solution is None:
                return
            sizes, objective = solution
            key = (objective, tuple(prefix))
            if best is None or key < (best[0], best[1]):
                best = (objective, tuple(prefix), sizes)
            return
        for count in counts:
            enumerate_combos(prefix + [count], depth + 1)

    enumerate_combos([], 0)
    if best is None:
        raise ValueError(
            "Eq. 4 is infeasible: the global batch cannot be reached within the "
            "saturation/memory bounds and accumulation limits"
        )
    objective, accumulation, sizes = best
    plans = []
    for group, c in zip(groups, accumulation):
        batch = sizes[group.name]
        plans.append(
            AccumulationPlan(
                group=group.name,
                batch_size=batch,
                accumulation=c,
                step_time=c * batch / group.throughput,
            )
        )
    return plans

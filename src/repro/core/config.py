"""Configuration objects for the AntDT framework — and the one sanctioned
``os.environ`` surface of the whole tree.

The hyper-parameters follow Section VII-A.5 of the paper: shard granularity
``M = 100`` batches, slowness ratio ``λ = 1.5``, sliding windows ``L_trans = 5``
minutes and ``L_per = 10`` minutes, agent reports every 10 iterations and the
controller acting every 5 minutes.

Environment variables are hidden inputs to a run: every read anywhere else
in ``src/repro`` is a potential determinism escape hatch that no spec hash
or golden trace can see.  The DET004 lint rule therefore whitelists exactly
this module; every knob gets a named accessor here (and nothing else may
touch ``os.environ``), so the complete set of environmental inputs is
auditable in one screenful.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ConsistencyModel", "IntegritySemantics", "AntDTConfig",
    "NO_COALESCE_ENV", "PROFILE_ENV", "JOBS_ENV", "CACHE_DIR_ENV",
    "BENCH_DIR_ENV", "env_text", "coalesce_default", "profiling_env_enabled",
    "jobs_env_override", "cache_dir_override", "bench_dir_override",
]

# ---------------------------------------------------------------------------
# Environment knobs (the single whitelisted os.environ surface — DET004)
# ---------------------------------------------------------------------------

#: Disable the engine's cohort event coalescing (debug / equivalence runs).
NO_COALESCE_ENV = "REPRO_NO_COALESCE"
#: Run drivers under cProfile ("" and "0" mean off).
PROFILE_ENV = "REPRO_PROFILE"
#: Default parallel worker count for orchestrated sweeps.
JOBS_ENV = "REPRO_JOBS"
#: Directory the content-addressed result store lives in.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Directory ``BENCH_engine.json`` is written to.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def env_text(name: str) -> Optional[str]:
    """Raw environment read — the one place ``os.environ`` is consulted."""
    return os.environ.get(name)


def coalesce_default() -> bool:
    """Engine coalescing default: on unless ``REPRO_NO_COALESCE`` is set."""
    return not env_text(NO_COALESCE_ENV)


def profiling_env_enabled() -> bool:
    """True when ``REPRO_PROFILE`` requests cProfile ("" / "0" mean off)."""
    return (env_text(PROFILE_ENV) or "") not in ("", "0")


def jobs_env_override() -> Optional[int]:
    """``REPRO_JOBS`` as an integer, or None when unset/blank."""
    raw = (env_text(JOBS_ENV) or "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be an integer, got {raw!r}") from None


def cache_dir_override() -> Optional[str]:
    """``REPRO_CACHE_DIR``, or None when unset/empty."""
    return env_text(CACHE_DIR_ENV) or None


def bench_dir_override() -> Optional[str]:
    """``REPRO_BENCH_DIR``, or None when unset/empty."""
    return env_text(BENCH_DIR_ENV) or None


class ConsistencyModel(enum.Enum):
    """Synchronisation mode of the data-parallel job."""

    BSP = "bsp"
    ASP = "asp"
    SSP = "ssp"


class IntegritySemantics(enum.Enum):
    """Data-integrity guarantee enforced by the Stateful DDS."""

    #: Every sample is used at least once per epoch (failovers may duplicate a
    #: few samples inside the interrupted shard).  This is the paper's default.
    AT_LEAST_ONCE = "at_least_once"
    #: Every sample is used at most once per epoch; requires one batch per
    #: shard, which costs extra DDS traffic.
    AT_MOST_ONCE = "at_most_once"


@dataclass
class AntDTConfig:
    """All knobs of the AntDT framework and its two reference solutions.

    Attributes
    ----------
    batches_per_shard:
        Shard granularity ``M``: how many (global) batches one shard holds.
    slowness_ratio:
        ``λ``: a node is a straggler when its window BPT exceeds ``λ`` times
        the average over all nodes.  The paper uses 1.5 in the evaluation.
    transient_window_s / persistent_window_s:
        ``L_trans`` and ``L_per`` sliding windows in seconds.
    report_interval_iters:
        The Agent reports application state every this many iterations.
    control_interval_s:
        The Controller aggregates and takes actions every this many seconds.
    min_batch_size:
        Lower bound for any per-worker batch size produced by ADJUST_BS.
    dds_op_overhead_s:
        Wall-clock cost of one DDS round trip (shard acquire or state report).
    agent_sync_overhead_s:
        Wall-clock cost of one agent report / local barrier synchronisation.
    kill_restart_cooldown_s:
        Minimum time between two KILL_RESTART actions on the same node, so
        the controller does not thrash a node that is still recovering.
    max_kill_restarts_per_node:
        Safety bound on relaunches of a single node.
    grad_accum_min / grad_accum_max:
        ``C_min`` / ``C_max`` bounds of the AntDT-DD optimisation (Eq. 4).
    integrity:
        Data-integrity semantics enforced by the DDS.
    adjust_lr_factor:
        Learning-rate penalty applied to stragglers by the ADJUST_LR action.
    """

    batches_per_shard: int = 100
    slowness_ratio: float = 1.5
    transient_window_s: float = 300.0
    persistent_window_s: float = 600.0
    report_interval_iters: int = 10
    control_interval_s: float = 300.0
    min_batch_size: int = 1
    dds_op_overhead_s: float = 0.005
    agent_sync_overhead_s: float = 0.002
    kill_restart_cooldown_s: float = 1200.0
    max_kill_restarts_per_node: int = 2
    grad_accum_min: int = 1
    grad_accum_max: int = 5
    integrity: IntegritySemantics = IntegritySemantics.AT_LEAST_ONCE
    adjust_lr_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.batches_per_shard <= 0:
            raise ValueError("batches_per_shard must be positive")
        if self.slowness_ratio <= 1.0:
            raise ValueError("slowness_ratio must be greater than 1.0")
        if self.transient_window_s <= 0 or self.persistent_window_s <= 0:
            raise ValueError("sliding windows must be positive")
        if self.transient_window_s > self.persistent_window_s:
            raise ValueError("the transient window must not exceed the persistent window")
        if self.report_interval_iters <= 0:
            raise ValueError("report_interval_iters must be positive")
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if self.min_batch_size <= 0:
            raise ValueError("min_batch_size must be positive")
        if self.dds_op_overhead_s < 0 or self.agent_sync_overhead_s < 0:
            raise ValueError("overheads must be non-negative")
        if self.grad_accum_min < 1 or self.grad_accum_max < self.grad_accum_min:
            raise ValueError("gradient accumulation bounds must satisfy 1 <= min <= max")
        if not 0 < self.adjust_lr_factor <= 1.0:
            raise ValueError("adjust_lr_factor must lie in (0, 1]")
        if self.integrity is IntegritySemantics.AT_MOST_ONCE and self.batches_per_shard != 1:
            raise ValueError(
                "at-most-once semantics requires batches_per_shard == 1 (see paper §V-C.3)"
            )

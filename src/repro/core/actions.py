"""The straggler-mitigation action set (paper Table II).

Actions are plain data objects produced by a solution inside the Controller
and executed by the Agents.  They fall into two types:

* **Global actions** require synchronisation among nodes so every worker
  applies them in the same iteration: ``ADJUST_BS``, ``BACKUP_WORKERS``,
  ``ADJUST_LR``.
* **Node actions** affect a single node and need no synchronisation:
  ``KILL_RESTART``, the elastic-membership pair ``SCALE_OUT`` /
  ``SCALE_IN`` (the joining/leaving node synchronises through the data
  allocator and the barrier, not through an agent broadcast), and the
  server-tier variants ``SCALE_OUT_SERVERS`` / ``SCALE_IN_SERVERS``
  (membership changes of the parameter-server fleet; workers synchronise
  through the re-partitioned shard map, not through a broadcast).

``NONE`` is the dummy action a solution returns when no straggler is present.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ActionKind",
    "ActionType",
    "Action",
    "AdjustBatchSize",
    "BackupWorkers",
    "KillRestart",
    "AdjustLearningRate",
    "ScaleOut",
    "ScaleIn",
    "ScaleOutServers",
    "ScaleInServers",
    "NoneAction",
]


class ActionKind(enum.Enum):
    """Synchronisation requirement of an action."""

    GLOBAL = "global"
    NODE = "node"
    NONE = "none"


class ActionType(enum.Enum):
    """The pre-defined action set of the AntDT Controller (paper Table II)."""

    ADJUST_BS = "adjust_bs"
    BACKUP_WORKERS = "backup_workers"
    KILL_RESTART = "kill_restart"
    ADJUST_LR = "adjust_lr"
    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    SCALE_OUT_SERVERS = "scale_out_servers"
    SCALE_IN_SERVERS = "scale_in_servers"
    NONE = "none"


@dataclass(frozen=True)
class Action:
    """Base class for actions; concrete actions add their payload."""

    @property
    def action_type(self) -> ActionType:
        """Which entry of the action set this is."""
        raise NotImplementedError

    @property
    def kind(self) -> ActionKind:
        """Whether the action is global (synchronised) or per-node."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for logs and experiment reports."""
        return self.action_type.value


@dataclass(frozen=True)
class AdjustBatchSize(Action):
    """Load-balancing action: assign a new batch size (and optionally a
    gradient-accumulation count) to every worker for the next iteration."""

    batch_sizes: Dict[str, int]
    grad_accumulation: Optional[Dict[str, int]] = None

    def __post_init__(self) -> None:
        if not self.batch_sizes:
            raise ValueError("ADJUST_BS requires at least one worker assignment")
        for worker, batch in self.batch_sizes.items():
            if batch <= 0:
                raise ValueError(f"batch size for {worker!r} must be positive, got {batch}")
        if self.grad_accumulation is not None:
            for worker, steps in self.grad_accumulation.items():
                if steps < 1:
                    raise ValueError(f"grad accumulation for {worker!r} must be >= 1")

    @property
    def action_type(self) -> ActionType:
        return ActionType.ADJUST_BS

    @property
    def kind(self) -> ActionKind:
        return ActionKind.GLOBAL

    def effective_batch(self, worker: str) -> int:
        """Samples a worker contributes per synchronisation (B_i * C_i)."""
        accumulation = 1
        if self.grad_accumulation is not None:
            accumulation = self.grad_accumulation.get(worker, 1)
        return self.batch_sizes[worker] * accumulation

    def describe(self) -> str:
        sizes = ", ".join(f"{worker}={size}" for worker, size in sorted(self.batch_sizes.items()))
        return f"ADJUST_BS({sizes})"


@dataclass(frozen=True)
class BackupWorkers(Action):
    """Replication action: drop the gradients of the ``num_backup`` slowest
    workers each iteration (their samples are re-queued by the DDS)."""

    num_backup: int

    def __post_init__(self) -> None:
        if self.num_backup < 0:
            raise ValueError("num_backup must be non-negative")

    @property
    def action_type(self) -> ActionType:
        return ActionType.BACKUP_WORKERS

    @property
    def kind(self) -> ActionKind:
        return ActionKind.GLOBAL

    def describe(self) -> str:
        return f"BACKUP_WORKERS(b={self.num_backup})"


@dataclass(frozen=True)
class KillRestart(Action):
    """Scheduling action: kill a straggling node and relaunch it elsewhere."""

    node_name: str
    reason: str = "persistent straggler"

    def __post_init__(self) -> None:
        if not self.node_name:
            raise ValueError("KILL_RESTART requires a node name")

    @property
    def action_type(self) -> ActionType:
        return ActionType.KILL_RESTART

    @property
    def kind(self) -> ActionKind:
        return ActionKind.NODE

    def describe(self) -> str:
        return f"KILL_RESTART({self.node_name})"


@dataclass(frozen=True)
class AdjustLearningRate(Action):
    """Optimization action: scale per-worker learning rates (penalise laggards)."""

    factors: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("ADJUST_LR requires at least one worker factor")
        for worker, factor in self.factors.items():
            if factor <= 0:
                raise ValueError(f"learning-rate factor for {worker!r} must be positive")

    @property
    def action_type(self) -> ActionType:
        return ActionType.ADJUST_LR

    @property
    def kind(self) -> ActionKind:
        return ActionKind.GLOBAL

    def describe(self) -> str:
        factors = ", ".join(f"{worker}={factor:g}" for worker, factor in sorted(self.factors.items()))
        return f"ADJUST_LR({factors})"


@dataclass(frozen=True)
class ScaleOut(Action):
    """Elastic-membership action: request ``num_workers`` additional workers.

    The requested pods ride the cluster scheduler's pending-time queue, so on
    a busy cluster they arrive late (or after the job already finished).
    """

    num_workers: int = 1
    reason: str = "scale out"

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("SCALE_OUT requires a positive worker count")

    @property
    def action_type(self) -> ActionType:
        return ActionType.SCALE_OUT

    @property
    def kind(self) -> ActionKind:
        return ActionKind.NODE

    def describe(self) -> str:
        return f"SCALE_OUT(+{self.num_workers})"


@dataclass(frozen=True)
class ScaleIn(Action):
    """Elastic-membership action: gracefully retire the named workers.

    A retiring worker drains: its in-flight samples are requeued with the
    data allocator (nothing is lost or double-trained), it leaves the BSP
    barrier, and its node departs the cluster membership for good.
    """

    node_names: Tuple[str, ...]
    reason: str = "scale in"

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_names", tuple(self.node_names))
        if not self.node_names:
            raise ValueError("SCALE_IN requires at least one node name")
        if len(set(self.node_names)) != len(self.node_names):
            raise ValueError("SCALE_IN node names must be unique")

    @property
    def action_type(self) -> ActionType:
        return ActionType.SCALE_IN

    @property
    def kind(self) -> ActionKind:
        return ActionKind.NODE

    def describe(self) -> str:
        return f"SCALE_IN({', '.join(self.node_names)})"


@dataclass(frozen=True)
class ScaleOutServers(Action):
    """Elastic-membership action: request ``num_servers`` additional
    parameter servers.

    The requested pods ride the same scheduling queue as worker scale-out;
    once placed, a joining server receives its slice of the re-partitioned
    parameter shard map before it starts serving pushes.
    """

    num_servers: int = 1
    reason: str = "server scale out"

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("SCALE_OUT_SERVERS requires a positive server count")

    @property
    def action_type(self) -> ActionType:
        return ActionType.SCALE_OUT_SERVERS

    @property
    def kind(self) -> ActionKind:
        return ActionKind.NODE

    def describe(self) -> str:
        return f"SCALE_OUT_SERVERS(+{self.num_servers})"


@dataclass(frozen=True)
class ScaleInServers(Action):
    """Elastic-membership action: gracefully retire the named servers.

    A retiring server drains: workers stop routing new pushes to it, its
    parameter shards are re-partitioned onto the surviving servers (the
    handoff is charged by the migration cost model), and its queued push
    requests are re-routed so no worker waits on a dead acknowledgement.
    """

    node_names: Tuple[str, ...]
    reason: str = "server scale in"

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_names", tuple(self.node_names))
        if not self.node_names:
            raise ValueError("SCALE_IN_SERVERS requires at least one node name")
        if len(set(self.node_names)) != len(self.node_names):
            raise ValueError("SCALE_IN_SERVERS node names must be unique")

    @property
    def action_type(self) -> ActionType:
        return ActionType.SCALE_IN_SERVERS

    @property
    def kind(self) -> ActionKind:
        return ActionKind.NODE

    def describe(self) -> str:
        return f"SCALE_IN_SERVERS({', '.join(self.node_names)})"


@dataclass(frozen=True)
class NoneAction(Action):
    """The dummy action: no straggler detected, keep training."""

    @property
    def action_type(self) -> ActionType:
        return ActionType.NONE

    @property
    def kind(self) -> ActionKind:
        return ActionKind.NONE

    def describe(self) -> str:
        return "NONE"

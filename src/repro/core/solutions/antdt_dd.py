"""AntDT-DD: the straggler-mitigation solution for dedicated clusters.

Dedicated heterogeneous GPU clusters only have *deterministic* stragglers
(V100 vs P100).  Simply shrinking the slow device's batch size (LB-BSP)
levels the per-iteration time but leaves the slow device under-utilised.
AntDT-DD instead solves Eq. 4: every device series gets a batch size between
its saturation point and its memory limit, plus a gradient-accumulation count,
so all devices run saturated and synchronise at (almost) the same moment.

Because the stragglers are deterministic, the adjustment only needs to run
once; afterwards the solution returns the dummy action.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..actions import Action, AdjustBatchSize, NoneAction
from ..controller import ControlContext
from ..solvers import AccumulationPlan, DeviceGroup, solve_gradient_accumulation
from .base import Solution

__all__ = ["AntDTDD"]


class AntDTDD(Solution):
    """The dedicated-cluster solution (paper §VI-B)."""

    name = "antdt-dd"

    def __init__(self, device_groups: Sequence[DeviceGroup], worker_groups: Dict[str, str],
                 min_accumulation: int = 1, max_accumulation: int = 5) -> None:
        """
        Parameters
        ----------
        device_groups:
            One :class:`DeviceGroup` per GPU series in the cluster, carrying
            the measured throughput, saturation point and memory limit.
        worker_groups:
            Mapping from worker name to the name of its device group.
        min_accumulation / max_accumulation:
            The ``C_min`` / ``C_max`` bounds of Eq. 4.
        """
        if not device_groups:
            raise ValueError("at least one device group is required")
        if not worker_groups:
            raise ValueError("worker_groups must map every worker to a device group")
        group_names = {group.name for group in device_groups}
        unknown = {name for name in worker_groups.values() if name not in group_names}
        if unknown:
            raise ValueError(f"worker_groups references unknown device groups: {sorted(unknown)}")
        self.device_groups = list(device_groups)
        self.worker_groups = dict(worker_groups)
        self.min_accumulation = min_accumulation
        self.max_accumulation = max_accumulation
        self._plan: Optional[List[AccumulationPlan]] = None

    def reset(self) -> None:
        self._plan = None

    @property
    def plan(self) -> Optional[List[AccumulationPlan]]:
        """The Eq. 4 solution once computed (None before the first decision)."""
        return self._plan

    def decide(self, context: ControlContext) -> List[Action]:
        if self._plan is not None:
            # Deterministic stragglers: adjust once, then do nothing.
            return [NoneAction()]
        self._plan = solve_gradient_accumulation(
            self.device_groups,
            global_batch=context.global_batch_size,
            min_accumulation=self.min_accumulation,
            max_accumulation=self.max_accumulation,
        )
        per_group = {plan.group: plan for plan in self._plan}
        batch_sizes: Dict[str, int] = {}
        accumulation: Dict[str, int] = {}
        for worker, group_name in self.worker_groups.items():
            plan = per_group[group_name]
            batch_sizes[worker] = plan.batch_size
            accumulation[worker] = plan.accumulation
        return [AdjustBatchSize(batch_sizes=batch_sizes, grad_accumulation=accumulation)]

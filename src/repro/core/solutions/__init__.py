"""Straggler-mitigation solutions built on the AntDT framework."""

from .antdt_dd import AntDTDD
from .antdt_nd import AntDTND
from .base import Solution

__all__ = ["AntDTDD", "AntDTND", "Solution"]

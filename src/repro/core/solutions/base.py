"""Base class for straggler-mitigation solutions.

A *solution* is a policy that maps the control context (window statistics,
cluster status) to a list of actions from the pre-defined action set.  The
AntDT framework handles data allocation and fault tolerance, so solutions stay
small and declarative; users customise behaviour by subclassing
:class:`Solution` and registering it with the Controller.
"""

from __future__ import annotations

from typing import List

from ..actions import Action
from ..controller import ControlContext

__all__ = ["Solution"]


class Solution:
    """Interface every straggler-mitigation solution implements."""

    #: Human-readable name used in experiment reports.
    name: str = "solution"

    def decide(self, context: ControlContext) -> List[Action]:
        """Return the actions to take for this control interval."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state before a new training job (optional)."""

"""AntDT-ND: the straggler-mitigation solution for non-dedicated clusters.

The policy follows Section VI-A of the paper:

Workers
    * Transient stragglers (short-window BPT ≥ λ · mean) are handled with the
      lightweight ``ADJUST_BS`` action: per-worker batch sizes are recomputed
      from the short-window throughputs via the Eq. 3 min-max solver.
    * Persistent stragglers (long-window BPT ≥ λ · mean) are handled with the
      heavyweight ``KILL_RESTART`` action — but only when the cluster is not
      busy (job pending time acceptable), the node has not exceeded its
      relaunch budget, and the node is not inside its post-restart cooldown.

Servers
    * Persistent server stragglers are handled with ``KILL_RESTART`` (a slow
      server inflates every worker's ``T_s`` and ``T_m``; no amount of batch
      rebalancing helps).

In ASP mode the solution only takes KILL_RESTART actions (there is no global
iteration to rebalance; the DDS already levels the data consumption).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..actions import Action, AdjustBatchSize, KillRestart, NoneAction
from ..config import ConsistencyModel
from ..controller import ControlContext
from ..detection import classify_stragglers, detect_stragglers
from ..solvers import solve_batch_sizes
from .base import Solution

__all__ = ["AntDTND"]


class AntDTND(Solution):
    """The non-dedicated-cluster solution (paper §VI-A)."""

    name = "antdt-nd"

    def __init__(self, enable_adjust_bs: bool = True, enable_kill_restart: bool = True,
                 max_restarts_per_interval: int = 1) -> None:
        if max_restarts_per_interval < 0:
            raise ValueError("max_restarts_per_interval must be non-negative")
        self.enable_adjust_bs = enable_adjust_bs
        self.enable_kill_restart = enable_kill_restart
        self.max_restarts_per_interval = max_restarts_per_interval
        self._last_batch_sizes: Optional[Dict[str, int]] = None

    def reset(self) -> None:
        self._last_batch_sizes = None

    # -- helpers -------------------------------------------------------------------
    def _eligible_for_restart(self, node: str, context: ControlContext) -> bool:
        config = context.config
        if context.restarts_of(node) >= config.max_kill_restarts_per_node:
            return False
        if context.seconds_since_restart(node) < config.kill_restart_cooldown_s:
            return False
        return True

    def _worker_actions(self, context: ControlContext) -> List[Action]:
        config = context.config
        short = {w: bpt for w, bpt in context.worker_short_bpts.items()
                 if w in context.active_workers}
        long = {w: bpt for w, bpt in context.worker_long_bpts.items()
                if w in context.active_workers}
        if not short and not long:
            return []
        groups = classify_stragglers(short, long, config.slowness_ratio)
        # Re-detect transient stragglers with the persistent ones excluded:
        # a single severe persistent straggler would otherwise inflate the
        # fleet-average BPT so much that the (milder) transient stragglers
        # never cross the λ threshold and ADJUST_BS never fires.
        if groups["persistent"]:
            filtered_short = {w: bpt for w, bpt in short.items()
                              if w not in groups["persistent"]}
            refined = detect_stragglers(filtered_short, config.slowness_ratio)
            groups["transient"] = [w for w in refined.stragglers
                                   if w not in groups["persistent"]]
        actions: List[Action] = []

        # Persistent worker stragglers -> KILL_RESTART (gated on cluster load).
        if self.enable_kill_restart and not context.cluster_busy:
            restarted = 0
            for worker in groups["persistent"]:
                if restarted >= self.max_restarts_per_interval:
                    break
                if self._eligible_for_restart(worker, context):
                    actions.append(KillRestart(node_name=worker,
                                               reason="persistent worker straggler"))
                    restarted += 1

        # Transient worker stragglers -> ADJUST_BS (BSP only).
        if (self.enable_adjust_bs
                and context.consistency is ConsistencyModel.BSP
                and groups["transient"]):
            throughputs = {w: v for w, v in context.worker_throughputs.items()
                           if w in context.active_workers and v > 0}
            if len(throughputs) == len(context.active_workers) and throughputs:
                batch_sizes = solve_batch_sizes(
                    throughputs,
                    global_batch=context.global_batch_size,
                    min_batch=config.min_batch_size,
                )
                if batch_sizes != self._last_batch_sizes:
                    self._last_batch_sizes = dict(batch_sizes)
                    actions.append(AdjustBatchSize(batch_sizes=batch_sizes))
        return actions

    def _server_actions(self, context: ControlContext) -> List[Action]:
        if not self.enable_kill_restart or context.cluster_busy:
            return []
        servers = {s: bpt for s, bpt in context.server_long_bpts.items()
                   if s in context.active_servers}
        if not servers:
            return []
        report = detect_stragglers(servers, context.config.slowness_ratio)
        actions: List[Action] = []
        restarted = 0
        for server in report.stragglers:
            if restarted >= self.max_restarts_per_interval:
                break
            if self._eligible_for_restart(server, context):
                actions.append(KillRestart(node_name=server,
                                           reason="persistent server straggler"))
                restarted += 1
        return actions

    # -- policy ----------------------------------------------------------------------
    def decide(self, context: ControlContext) -> List[Action]:
        actions: List[Action] = []
        if context.consistency is ConsistencyModel.BSP:
            actions.extend(self._worker_actions(context))
        else:
            # ASP / SSP: the DDS already balances data; only remove persistent
            # stragglers (paper: "In ASP training, AntDT-ND only takes the
            # KILL_RESTART action").
            saved = self.enable_adjust_bs
            self.enable_adjust_bs = False
            try:
                actions.extend(self._worker_actions(context))
            finally:
                self.enable_adjust_bs = saved
        actions.extend(self._server_actions(context))
        if not actions:
            return [NoneAction()]
        return actions

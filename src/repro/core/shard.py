"""Shards and shard states for the Stateful Dynamic Data Sharding service.

A shard is a contiguous range of sample indices described by just two
integers (start offset and length), as in the paper: keeping shards tiny on
the wire is what makes the DDS cheap enough to run at hundreds of nodes.
Each shard carries a state (TODO / DOING / DONE) that the DDS uses to
guarantee data integrity across failovers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ShardState", "Shard", "SampleRange"]


class ShardState(enum.Enum):
    """Lifecycle state of a data shard."""

    #: Ready for assignment.
    TODO = "todo"
    #: Currently being processed by exactly one worker.
    DOING = "doing"
    #: All of the shard's batches have been pushed to the servers.
    DONE = "done"


@dataclass(frozen=True)
class SampleRange:
    """A contiguous range of sample indices handed to a worker as one batch."""

    offset: int
    length: int
    epoch: int = 0
    shard_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ValueError("a sample range requires offset >= 0 and length > 0")

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length


@dataclass
class Shard:
    """One unit of data assignment managed by the DDS.

    Attributes
    ----------
    shard_id:
        Unique identifier within the job.
    offset / length:
        The sample range covered by this shard.
    epoch:
        Which pass over the dataset this shard belongs to.
    state:
        TODO / DOING / DONE.
    owner:
        The worker currently processing the shard (DOING only).
    completed:
        Number of samples of the shard whose gradients have been accepted.
    """

    shard_id: int
    offset: int
    length: int
    epoch: int = 0
    state: ShardState = ShardState.TODO
    owner: Optional[str] = None
    completed: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ValueError("a shard requires offset >= 0 and length > 0")
        if not 0 <= self.completed <= self.length:
            raise ValueError("completed must lie in [0, length]")

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length

    @property
    def remaining(self) -> int:
        """Samples whose gradients have not been accepted yet."""
        return self.length - self.completed

    def assign(self, worker: str) -> None:
        """Move the shard to DOING under ``worker``."""
        if self.state is not ShardState.TODO:
            raise ValueError(f"shard {self.shard_id} is {self.state.value}, cannot assign")
        self.state = ShardState.DOING
        self.owner = worker

    def confirm(self, num_samples: int) -> None:
        """Record that ``num_samples`` more samples were accepted by the servers."""
        if self.state is not ShardState.DOING:
            raise ValueError(f"shard {self.shard_id} is {self.state.value}, cannot confirm work")
        if num_samples < 0 or self.completed + num_samples > self.length:
            raise ValueError("confirmed samples exceed the shard length")
        self.completed += num_samples
        if self.completed == self.length:
            self.state = ShardState.DONE
            self.owner = None

    def release(self) -> int:
        """Return the shard's unfinished tail to TODO; returns the tail length.

        Called when the owning worker fails over or its gradients are dropped:
        the confirmed prefix stays done (its updates already live on the
        servers), the rest goes back to the queue.
        """
        if self.state is not ShardState.DOING:
            raise ValueError(f"shard {self.shard_id} is {self.state.value}, cannot release")
        remaining = self.remaining
        self.offset += self.completed
        self.length = remaining
        self.completed = 0
        self.owner = None
        self.state = ShardState.TODO
        return remaining

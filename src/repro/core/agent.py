"""The AntDT Agent and its synchronisation mechanism.

One Agent runs on every worker and server node.  It has two duties
(paper §V-F):

* asynchronously push application/node state to the Monitor (every
  ``report_interval_iters`` iterations, so monitoring stays minute-level
  cheap);
* receive straggler-mitigation actions from the Controller and hand them to
  the training process at an iteration boundary.

Global actions (ADJUST_BS, BACKUP_WORKERS, ADJUST_LR) must be applied by all
workers in the same iteration.  The Controller sends the action to the
*primary* agent, the primary broadcasts it to the secondaries, and every
training process picks it up at its next local barrier.  In the simulation the
broadcast is represented by a shared, monotonically increasing *generation*
number on the :class:`AgentGroup`; each agent tracks the last generation it
applied, and the per-poll synchronisation cost is charged to the training
loop and accounted as framework overhead (paper Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .actions import Action
from .config import AntDTConfig
from .monitor import Monitor

__all__ = ["Agent", "AgentGroup"]


class AgentGroup:
    """Shared coordination state for all agents of one training job."""

    def __init__(self, monitor: Monitor, config: AntDTConfig) -> None:
        self.monitor = monitor
        self.config = config
        self._agents: Dict[str, "Agent"] = {}
        self._primary: Optional[str] = None
        self._generation = 0
        self._actions: List[Tuple[int, Action]] = []
        self.report_overhead_s = 0.0
        self.sync_overhead_s = 0.0

    # -- membership -------------------------------------------------------------
    def create_agent(self, node_name: str, is_worker: bool = True) -> "Agent":
        """Create (and register) the agent for a node.

        The first registered agent becomes the primary, mirroring the paper's
        randomly elected primary worker.
        """
        if node_name in self._agents:
            raise ValueError(f"an agent for {node_name!r} already exists")
        agent = Agent(node_name, self, is_worker=is_worker)
        self._agents[node_name] = agent
        if self._primary is None:
            self._primary = node_name
        return agent

    @property
    def primary(self) -> Optional[str]:
        """Name of the primary agent."""
        return self._primary

    @property
    def agents(self) -> List["Agent"]:
        """All registered agents."""
        return list(self._agents.values())

    def agent(self, node_name: str) -> "Agent":
        """Look up the agent of a node."""
        return self._agents[node_name]

    # -- action broadcast ----------------------------------------------------------
    @property
    def generation(self) -> int:
        """Current broadcast generation (0 = nothing broadcast yet)."""
        return self._generation

    def broadcast(self, action: Action, time: float = 0.0) -> int:
        """Broadcast a global action from the primary agent to all agents.

        Returns the new generation number.  The training processes will apply
        the action at their next iteration boundary via :meth:`Agent.poll`.
        """
        self._generation += 1
        self._actions.append((self._generation, action))
        self.monitor.metrics.log_event(time, "action_broadcast", tag="controller",
                                       detail=action.describe())
        return self._generation

    def actions_since(self, generation: int) -> List[Tuple[int, Action]]:
        """All broadcast actions with generation greater than ``generation``."""
        return [(gen, action) for gen, action in self._actions if gen > generation]

    @property
    def action_history(self) -> List[Action]:
        """Every global action broadcast so far, in order."""
        return [action for _, action in self._actions]

    # -- overhead accounting ----------------------------------------------------------
    def charge_report(self) -> float:
        """Account for one agent report to the Monitor; returns the charge."""
        self.report_overhead_s += self.config.agent_sync_overhead_s
        return self.config.agent_sync_overhead_s

    def charge_sync(self) -> float:
        """Account for one local-barrier synchronisation; returns the charge."""
        self.sync_overhead_s += self.config.agent_sync_overhead_s
        return self.config.agent_sync_overhead_s

    @property
    def total_overhead_s(self) -> float:
        """Total agent-side synchronisation overhead accumulated so far."""
        return self.report_overhead_s + self.sync_overhead_s


class Agent:
    """The per-node agent process (modelled as a passive helper object)."""

    def __init__(self, node_name: str, group: AgentGroup, is_worker: bool = True) -> None:
        self.node_name = node_name
        self.group = group
        self.is_worker = is_worker
        self.applied_generation = 0
        self._iterations_since_report = 0
        self._bpt_buffer: List[float] = []
        self._last_batch_size = 0

    @property
    def is_primary(self) -> bool:
        """Whether this agent is the primary of its group."""
        return self.group.primary == self.node_name

    # -- reporting path ---------------------------------------------------------------
    def report_iteration(self, bpt: float, batch_size: int, time: float) -> float:
        """Record one finished iteration; forward to the Monitor periodically.

        Returns the wall-clock overhead (seconds) the training process should
        pay for this call: zero between reports, one report charge every
        ``report_interval_iters`` iterations.
        """
        self._bpt_buffer.append(float(bpt))
        self._last_batch_size = int(batch_size)
        self._iterations_since_report += 1
        if self._iterations_since_report < self.group.config.report_interval_iters:
            return 0.0
        return self.flush(time)

    def flush(self, time: float) -> float:
        """Flush buffered iteration statistics to the Monitor."""
        if not self._bpt_buffer:
            return 0.0
        mean_bpt = sum(self._bpt_buffer) / len(self._bpt_buffer)
        if self.is_worker:
            self.group.monitor.report_worker(self.node_name, mean_bpt,
                                             max(self._last_batch_size, 1), time)
        else:
            self.group.monitor.report_server(self.node_name, mean_bpt, time)
        self._bpt_buffer = []
        self._iterations_since_report = 0
        return self.group.charge_report()

    def report_server_request(self, handling_time: float, time: float) -> float:
        """Server-side convenience: report per-request handling time."""
        return self.report_iteration(handling_time, 1, time)

    def snapshot_report_state(self) -> Tuple[List[float], int, int]:
        """Capture the buffered reporting state for a coalesced commit.

        A server that eagerly commits a window of future report decisions
        snapshots this state first, so a rescinded window can be rewound
        with :meth:`restore_report_state` and replayed.
        """
        return (list(self._bpt_buffer), self._iterations_since_report,
                self._last_batch_size)

    def restore_report_state(self, state: Tuple[List[float], int, int]) -> None:
        """Rewind the buffered reporting state to a prior snapshot."""
        buffer, since_report, last_batch = state
        self._bpt_buffer = list(buffer)
        self._iterations_since_report = since_report
        self._last_batch_size = last_batch

    # -- action path ---------------------------------------------------------------------
    def poll(self) -> Tuple[List[Action], float]:
        """Fetch actions broadcast since this agent last applied one.

        Returns the list of actions (oldest first) and the synchronisation
        overhead to charge to the training loop (zero when there is nothing
        new — polling shared state is free; the local barrier is only needed
        when an action actually has to be applied).
        """
        group = self.group
        if group.generation == self.applied_generation:
            # Nothing broadcast since the last application — by far the common
            # case, checked without building the actions_since list (poll runs
            # once per worker iteration).
            return [], 0.0
        pending = group.actions_since(self.applied_generation)
        if not pending:
            return [], 0.0
        self.applied_generation = pending[-1][0]
        overhead = self.group.charge_sync()
        return [action for _, action in pending], overhead

    def reset_after_restart(self) -> None:
        """Called when the node is relaunched: clear buffered state.

        The new pod keeps the applied generation (it reads the latest global
        action from the primary when it rejoins), so no stale action replays.
        """
        self._bpt_buffer = []
        self._iterations_since_report = 0
        self.applied_generation = self.group.generation

"""The AntDT framework: Stateful DDS, Monitor, Controller, Agent, solutions.

This package is the paper's primary contribution.  It deliberately contains
no knowledge of the simulation substrate or of any particular training
architecture: the Parameter Server and AllReduce jobs in
:mod:`repro.psarch` / :mod:`repro.allreduce` plug into it through the
:class:`~repro.core.controller.ActionExecutor` protocol and the
:class:`~repro.core.sharding.DataAllocator` interface.
"""

from .actions import (
    Action,
    ActionKind,
    ActionType,
    AdjustBatchSize,
    AdjustLearningRate,
    BackupWorkers,
    KillRestart,
    NoneAction,
    ScaleIn,
    ScaleOut,
)
from .agent import Agent, AgentGroup
from .config import AntDTConfig, ConsistencyModel, IntegritySemantics
from .controller import ActionExecutor, ControlContext, Controller
from .detection import StragglerReport, classify_stragglers, detect_stragglers
from .monitor import Monitor
from .shard import SampleRange, Shard, ShardState
from .sharding import DataAllocator, StatefulDDS, StaticPartition
from .shuffler import ShardShuffler
from .solutions import AntDTDD, AntDTND, Solution
from .solvers import AccumulationPlan, DeviceGroup, solve_batch_sizes, solve_gradient_accumulation

__all__ = [
    "AccumulationPlan",
    "Action",
    "ActionExecutor",
    "ActionKind",
    "ActionType",
    "AdjustBatchSize",
    "AdjustLearningRate",
    "Agent",
    "AgentGroup",
    "AntDTConfig",
    "AntDTDD",
    "AntDTND",
    "BackupWorkers",
    "ConsistencyModel",
    "ControlContext",
    "Controller",
    "DataAllocator",
    "DeviceGroup",
    "IntegritySemantics",
    "KillRestart",
    "Monitor",
    "NoneAction",
    "SampleRange",
    "ScaleIn",
    "ScaleOut",
    "Shard",
    "ShardShuffler",
    "ShardState",
    "Solution",
    "StatefulDDS",
    "StaticPartition",
    "StragglerReport",
    "classify_stragglers",
    "detect_stragglers",
    "solve_batch_sizes",
    "solve_gradient_accumulation",
]

"""Shard shuffling.

The DDS shuffles at two levels (paper Fig. 5): the order in which shards are
inserted into the queue, and the order of the samples inside a shard when the
worker materialises it.  Both are deterministic functions of (seed, epoch) so
that a failover replays the exact same ordering.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .shard import SampleRange, Shard

__all__ = ["ShardShuffler"]


class ShardShuffler:
    """Deterministic two-level shuffler for data shards."""

    def __init__(self, seed: int = 0, shuffle_shards: bool = True,
                 shuffle_within_shard: bool = True) -> None:
        self.seed = int(seed)
        self.shuffle_shards = shuffle_shards
        self.shuffle_within_shard = shuffle_within_shard

    def shard_order(self, num_shards: int, epoch: int) -> List[int]:
        """Order in which shard ids are enqueued for the given epoch."""
        order = list(range(num_shards))
        if not self.shuffle_shards:
            return order
        rng = np.random.default_rng((self.seed, epoch, 0x5A))
        permutation = rng.permutation(num_shards)
        return [int(i) for i in permutation]

    def sample_indices(self, sample_range: SampleRange) -> np.ndarray:
        """Global sample indices of a range, shuffled within the range."""
        indices = np.arange(sample_range.offset, sample_range.end, dtype=np.int64)
        if not self.shuffle_within_shard:
            return indices
        rng = np.random.default_rng(
            (self.seed, sample_range.epoch, sample_range.offset, sample_range.length)
        )
        rng.shuffle(indices)
        return indices

    def shuffle_shards_list(self, shards: Sequence[Shard], epoch: int) -> List[Shard]:
        """Return the shards reordered for enqueueing at the start of an epoch."""
        order = self.shard_order(len(shards), epoch)
        return [shards[i] for i in order]

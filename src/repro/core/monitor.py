"""The AntDT Monitor.

The Monitor aggregates three kinds of information for straggler mitigation
(paper §V-D):

* **Application state** — batch processing time and batch size reported by the
  Agents on worker and server nodes.
* **Node state** — termination notifications and error codes, classified into
  retryable and unretryable errors.
* **Third-party information** — values pulled from other modules, e.g. the
  cluster scheduler's job pending time, used to gate KILL_RESTART.

It offers sliding-window queries (the ``L_trans`` / ``L_per`` windows of the
AntDT-ND solution) on top of :class:`~repro.sim.metrics.MetricsRecorder`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.failures import NodeFailure
from ..sim.metrics import MetricsRecorder, window_start

__all__ = ["Monitor"]


class Monitor:
    """Collects and aggregates observability data for the Controller."""

    WORKER_BPT = "worker_bpt"
    WORKER_BATCH = "worker_batch_size"
    WORKER_THROUGHPUT = "worker_throughput"
    SERVER_BPT = "server_bpt"

    def __init__(self, metrics: Optional[MetricsRecorder] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._third_party: Dict[str, Callable[[], float]] = {}
        self._node_events: List[NodeFailure] = []
        self._workers: List[str] = []
        self._servers: List[str] = []

    # -- application state -------------------------------------------------------
    def report_worker(self, worker: str, bpt: float, batch_size: int, time: float) -> None:
        """Record one worker application-state report (BPT and batch size)."""
        if bpt < 0 or batch_size <= 0:
            raise ValueError("bpt must be non-negative and batch_size positive")
        if worker not in self._workers:
            self._workers.append(worker)
        self.metrics.record(self.WORKER_BPT, bpt, time, tag=worker)
        self.metrics.record(self.WORKER_BATCH, float(batch_size), time, tag=worker)
        throughput = batch_size / bpt if bpt > 0 else float("inf")
        self.metrics.record(self.WORKER_THROUGHPUT, throughput, time, tag=worker)

    def report_server(self, server: str, bpt: float, time: float) -> None:
        """Record one server application-state report (per-request handling time)."""
        if bpt < 0:
            raise ValueError("bpt must be non-negative")
        if server not in self._servers:
            self._servers.append(server)
        self.metrics.record(self.SERVER_BPT, bpt, time, tag=server)

    # -- node state ----------------------------------------------------------------
    def report_node_event(self, failure: NodeFailure) -> None:
        """Record a node termination notification."""
        self._node_events.append(failure)
        self.metrics.log_event(failure.time, "node_failure", failure.node_name, failure.code.value)

    def node_events(self, node: Optional[str] = None) -> List[NodeFailure]:
        """Node terminations seen so far, optionally for a single node."""
        if node is None:
            return list(self._node_events)
        return [event for event in self._node_events if event.node_name == node]

    # -- third-party information -----------------------------------------------------
    def register_third_party(self, key: str, provider: Callable[[], float]) -> None:
        """Register a callable that supplies a third-party value on demand."""
        self._third_party[key] = provider

    def third_party(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """Fetch a third-party value (e.g. ``"pending_time"``)."""
        provider = self._third_party.get(key)
        if provider is None:
            return default
        return float(provider())

    # -- aggregated queries ------------------------------------------------------------
    @property
    def known_workers(self) -> List[str]:
        """Workers that have reported at least once."""
        return list(self._workers)

    @property
    def known_servers(self) -> List[str]:
        """Servers that have reported at least once."""
        return list(self._servers)

    @staticmethod
    def _window_start(window_s: float, now: float) -> float:
        """Left edge of the sliding window ending at ``now``.

        Delegates to :func:`repro.sim.metrics.window_start` so every windowed
        consumer (this Monitor, the failure injector) shares the same
        half-open ``(start, now]`` semantics, including the first-window
        widening that keeps a t=0 observation from being silently dropped.
        """
        return window_start(window_s, now)

    def node_events_between(self, window_s: float, now: float,
                            node: Optional[str] = None) -> List[NodeFailure]:
        """Node terminations inside the sliding window ``(now - window_s, now]``.

        Uses the same half-open boundary semantics (and first-window widening)
        as the application-state queries below, so a failure reported exactly
        at t=0 is attributed to the first window rather than lost.
        """
        start = window_start(window_s, now)
        return [
            event for event in self._node_events
            if start < event.time <= now and (node is None or event.node_name == node)
        ]

    def worker_bpt_means(self, window_s: float, now: float) -> Dict[str, float]:
        """Sliding-window mean BPT per worker over ``(now - window_s, now]``."""
        return self.metrics.per_tag_window_means(
            self.WORKER_BPT, self._window_start(window_s, now), now)

    def server_bpt_means(self, window_s: float, now: float) -> Dict[str, float]:
        """Sliding-window mean BPT per server."""
        return self.metrics.per_tag_window_means(
            self.SERVER_BPT, self._window_start(window_s, now), now)

    def worker_throughputs(self, window_s: float, now: float) -> Dict[str, float]:
        """Sliding-window mean throughput (samples/s) per worker — the v_i of Eq. 3."""
        return self.metrics.per_tag_window_means(
            self.WORKER_THROUGHPUT, self._window_start(window_s, now), now)

    def worker_batch_sizes(self, window_s: float, now: float) -> Dict[str, float]:
        """Sliding-window mean batch size per worker."""
        return self.metrics.per_tag_window_means(
            self.WORKER_BATCH, self._window_start(window_s, now), now)

"""The AntDT Controller.

The Controller periodically ingests aggregated statistics from the Monitor,
asks the configured straggler-mitigation *solution* which actions to take,
and dispatches them: global actions are broadcast through the AgentGroup
(so every worker applies them in the same iteration), node actions
(KILL_RESTART) are handed to the training job's executor, which kills the pod
and drives the relaunch through the cluster scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from ..sim.engine import Environment
from .actions import (
    Action,
    ActionKind,
    AdjustBatchSize,
    AdjustLearningRate,
    BackupWorkers,
    KillRestart,
    NoneAction,
    ScaleIn,
    ScaleInServers,
    ScaleOut,
    ScaleOutServers,
)
from .agent import AgentGroup
from .config import AntDTConfig, ConsistencyModel
from .monitor import Monitor

__all__ = ["ControlContext", "ActionExecutor", "Controller"]


@dataclass
class ControlContext:
    """A snapshot of everything a solution may use to decide on actions."""

    now: float
    config: AntDTConfig
    consistency: ConsistencyModel
    global_batch_size: int
    active_workers: List[str]
    active_servers: List[str]
    worker_short_bpts: Dict[str, float]
    worker_long_bpts: Dict[str, float]
    worker_throughputs: Dict[str, float]
    server_long_bpts: Dict[str, float]
    cluster_busy: bool = False
    pending_time_s: float = 0.0
    restarts_per_node: Dict[str, int] = field(default_factory=dict)
    last_restart_time: Dict[str, float] = field(default_factory=dict)

    def restarts_of(self, node: str) -> int:
        """How many times a node has already been relaunched."""
        return self.restarts_per_node.get(node, 0)

    def seconds_since_restart(self, node: str) -> float:
        """Seconds since the node's last relaunch (inf if never relaunched)."""
        if node not in self.last_restart_time:
            return float("inf")
        return self.now - self.last_restart_time[node]


class ActionExecutor(Protocol):
    """What the Controller needs from the training job to execute node actions."""

    @property
    def finished(self) -> bool:
        """True once the training job has completed."""
        ...

    def active_worker_names(self) -> List[str]:
        """Workers currently participating in training."""
        ...

    def active_server_names(self) -> List[str]:
        """Servers currently participating in training."""
        ...

    def request_kill_restart(self, node_name: str, reason: str) -> bool:
        """Kill and relaunch a node; returns False if the request was refused."""
        ...

    def set_backup_workers(self, num_backup: int) -> None:
        """Configure how many slowest gradients are dropped per iteration."""
        ...

    def apply_lr_factors(self, factors: Dict[str, float]) -> None:
        """Scale per-worker learning rates (ADJUST_LR)."""
        ...

    def restart_counts(self) -> Dict[str, int]:
        """Relaunches performed so far, per node."""
        ...

    def last_restart_times(self) -> Dict[str, float]:
        """Simulation time of the most recent relaunch, per node."""
        ...

    def request_scale_out(self, count: int, reason: str) -> List[str]:
        """Request additional workers; returns the names actually requested.

        Executors without elastic membership (e.g. a static-partition job)
        may refuse by returning an empty list.
        """
        ...

    def request_scale_in(self, node_names: "List[str]", reason: str) -> List[str]:
        """Gracefully retire workers; returns the names actually retiring."""
        ...

    def request_server_scale_out(self, count: int, reason: str) -> List[str]:
        """Request additional parameter servers; returns the names requested."""
        ...

    def request_server_scale_in(self, node_names: "List[str]",
                                reason: str) -> List[str]:
        """Gracefully retire parameter servers; returns the names draining."""
        ...


class Controller:
    """Periodic control loop dispatching straggler-mitigation actions."""

    def __init__(
        self,
        env: Environment,
        monitor: Monitor,
        agent_group: AgentGroup,
        solution: "Solution",
        executor: ActionExecutor,
        config: AntDTConfig,
        consistency: ConsistencyModel,
        global_batch_size: int,
        busy_provider: Optional[callable] = None,
        pending_time_provider: Optional[callable] = None,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.agent_group = agent_group
        self.solution = solution
        self.executor = executor
        self.config = config
        self.consistency = consistency
        self.global_batch_size = global_batch_size
        self._busy_provider = busy_provider
        self._pending_time_provider = pending_time_provider
        self.action_log: List[Action] = []
        self.decision_times: List[float] = []
        self._stopped = False

    # -- context ------------------------------------------------------------------
    def build_context(self) -> ControlContext:
        """Assemble the control context from the Monitor and the executor."""
        now = self.env.now
        cfg = self.config
        busy = bool(self._busy_provider()) if self._busy_provider is not None else False
        pending = float(self._pending_time_provider()) if self._pending_time_provider else 0.0
        return ControlContext(
            now=now,
            config=cfg,
            consistency=self.consistency,
            global_batch_size=self.global_batch_size,
            active_workers=self.executor.active_worker_names(),
            active_servers=self.executor.active_server_names(),
            worker_short_bpts=self.monitor.worker_bpt_means(cfg.transient_window_s, now),
            worker_long_bpts=self.monitor.worker_bpt_means(cfg.persistent_window_s, now),
            worker_throughputs=self.monitor.worker_throughputs(cfg.transient_window_s, now),
            server_long_bpts=self.monitor.server_bpt_means(cfg.persistent_window_s, now),
            cluster_busy=busy,
            pending_time_s=pending,
            restarts_per_node=self.executor.restart_counts(),
            last_restart_time=self.executor.last_restart_times(),
        )

    # -- dispatch ------------------------------------------------------------------
    def dispatch(self, action: Action) -> None:
        """Execute one action via the appropriate channel."""
        self.action_log.append(action)
        if isinstance(action, NoneAction):
            return
        if isinstance(action, KillRestart):
            self.executor.request_kill_restart(action.node_name, action.reason)
            return
        if isinstance(action, BackupWorkers):
            self.executor.set_backup_workers(action.num_backup)
            self.agent_group.broadcast(action, time=self.env.now)
            return
        if isinstance(action, AdjustLearningRate):
            self.executor.apply_lr_factors(action.factors)
            self.agent_group.broadcast(action, time=self.env.now)
            return
        if isinstance(action, AdjustBatchSize):
            self.agent_group.broadcast(action, time=self.env.now)
            return
        if isinstance(action, ScaleOut):
            self.executor.request_scale_out(action.num_workers, action.reason)
            return
        if isinstance(action, ScaleIn):
            self.executor.request_scale_in(list(action.node_names), action.reason)
            return
        if isinstance(action, ScaleOutServers):
            self.executor.request_server_scale_out(action.num_servers, action.reason)
            return
        if isinstance(action, ScaleInServers):
            self.executor.request_server_scale_in(list(action.node_names),
                                                  action.reason)
            return
        raise TypeError(f"unknown action type: {action!r}")

    def control_step(self) -> List[Action]:
        """Run one decision round immediately (used by tests and by :meth:`run`)."""
        context = self.build_context()
        actions = self.solution.decide(context)
        self.decision_times.append(self.env.now)
        for action in actions:
            self.dispatch(action)
        return actions

    # -- simulated control loop ------------------------------------------------------
    def run(self):
        """Simulation process: decide every ``control_interval_s`` seconds."""
        while not self._stopped:
            yield self.env.timeout(self.config.control_interval_s)
            if self.executor.finished or self._stopped:
                break
            self.control_step()

    def stop(self) -> None:
        """Stop the control loop after the current interval."""
        self._stopped = True

    # -- reporting -------------------------------------------------------------------
    def actions_of_type(self, action_type) -> List[Action]:
        """All dispatched actions of one type."""
        return [action for action in self.action_log if action.action_type == action_type]

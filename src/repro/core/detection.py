"""Straggler detection rules.

The paper's detection rule is deliberately simple: a node is a straggler when
its sliding-window batch processing time exceeds ``λ`` times the average over
all nodes.  Applying the rule to the short window ``L_trans`` yields transient
stragglers, to the long window ``L_per`` persistent stragglers; in dedicated
heterogeneous clusters the same rule on throughput identifies deterministic
stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["StragglerReport", "detect_stragglers", "classify_stragglers"]


@dataclass(frozen=True)
class StragglerReport:
    """Result of one detection pass over a set of nodes."""

    stragglers: List[str]
    mean_bpt: float
    bpts: Dict[str, float]
    slowness_ratio: float

    def is_straggler(self, node: str) -> bool:
        """Whether a node was flagged."""
        return node in self.stragglers

    def relative_slowness(self, node: str) -> float:
        """BPT of ``node`` divided by the fleet mean (1.0 = average)."""
        if self.mean_bpt <= 0:
            return 1.0
        return self.bpts.get(node, self.mean_bpt) / self.mean_bpt


def detect_stragglers(bpts: Mapping[str, float], slowness_ratio: float) -> StragglerReport:
    """Flag every node whose BPT is at least ``slowness_ratio`` times the mean.

    Parameters
    ----------
    bpts:
        Sliding-window mean BPT per node, as produced by
        :meth:`~repro.core.monitor.Monitor.worker_bpt_means` /
        ``server_bpt_means`` (half-open ``(now - window, now]`` windows; the
        first window of a run is widened to include observations recorded
        exactly at t=0 — see ``Monitor._window_start``).  Nodes without data
        should simply be omitted from the mapping.
    slowness_ratio:
        The λ factor (must be > 1).
    """
    if slowness_ratio <= 1.0:
        raise ValueError("slowness_ratio must be greater than 1.0")
    clean = {node: float(bpt) for node, bpt in bpts.items() if bpt is not None}
    if not clean:
        return StragglerReport(stragglers=[], mean_bpt=0.0, bpts={}, slowness_ratio=slowness_ratio)
    mean_bpt = sum(clean.values()) / len(clean)
    stragglers = sorted(
        node for node, bpt in clean.items() if mean_bpt > 0 and bpt >= slowness_ratio * mean_bpt
    )
    return StragglerReport(
        stragglers=stragglers, mean_bpt=mean_bpt, bpts=clean, slowness_ratio=slowness_ratio
    )


def classify_stragglers(
    short_window_bpts: Mapping[str, float],
    long_window_bpts: Mapping[str, float],
    slowness_ratio: float,
) -> Dict[str, List[str]]:
    """Split stragglers into transient and persistent sets.

    A node flagged on the long window is a *persistent* straggler (handled by
    KILL_RESTART); a node flagged only on the short window is a *transient*
    straggler (handled by ADJUST_BS).  Persistent stragglers are removed from
    the transient list so a node never receives both treatments at once.
    """
    short_report = detect_stragglers(short_window_bpts, slowness_ratio)
    long_report = detect_stragglers(long_window_bpts, slowness_ratio)
    persistent = list(long_report.stragglers)
    transient = [node for node in short_report.stragglers if node not in persistent]
    return {"transient": transient, "persistent": persistent}

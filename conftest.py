"""Pytest bootstrap: make ``repro`` importable from the source tree.

The package is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in offline environments where an
editable install is not possible.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

"""Pytest bootstrap: make ``repro`` importable and wire the test tiers.

The package is normally installed with ``pip install -e .``; the sys.path
fallback keeps the test and benchmark suites runnable in offline environments
where an editable install is not possible.

Markers
-------
``tier1``
    The fast regression tier (everything under ``tests/``); this is the suite
    a PR must keep green.  Run it alone with ``pytest -m tier1``.
``golden``
    Golden-trace regression tests (``tests/golden/``): every registered
    scenario's fingerprint must match its checked-in trace byte for byte.
    Regenerate deliberately with ``pytest tests/golden --update-golden``
    (or ``make golden-update``).
``slow``
    The heavyweight tail (large-cluster scenarios, scale sweeps).  Skip it
    during tight edit loops with ``pytest -m "not slow"``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

import pytest  # noqa: E402


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Point the orchestrator's result store at a per-session temp directory.

    Orchestrated sweeps cache fingerprints under ``REPRO_CACHE_DIR`` (default:
    ``.repro-cache/`` at the repo root); tests must neither read developer
    caches nor litter the tree, so the whole session — including the pool
    worker processes, which inherit the environment — uses a throwaway store.
    Tests that exercise cache semantics pass an explicit store path instead.
    """
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="Rewrite the golden traces under tests/golden/traces/ instead of "
             "comparing against them (deliberate regeneration).",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "tier1: fast regression tier; must stay green on every PR")
    config.addinivalue_line(
        "markers", "golden: golden-trace regression tests over the scenario registry")
    config.addinivalue_line(
        "markers", "slow: heavyweight tests (large clusters, scale sweeps)")


def pytest_collection_modifyitems(config, items):
    """Attach tier markers by location so the tiers need no per-file boilerplate."""
    tests_root = Path(__file__).resolve().parent / "tests"
    golden_root = tests_root / "golden"
    for item in items:
        path = Path(str(item.fspath))
        if golden_root in path.parents:
            item.add_marker(pytest.mark.golden)
        if tests_root in path.parents:
            item.add_marker(pytest.mark.tier1)

"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that legacy/offline installs (``pip install -e . --no-use-pep517
--no-build-isolation``) work in environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of AntDT: A Self-Adaptive Distributed Training Framework "
        "for Leader and Straggler Nodes (ICDE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
